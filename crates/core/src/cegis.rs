//! The CEGIS bounded-synthesis backend: a guess–verify–block loop over
//! candidate fault-tolerant models, cross-checked by the same semantic
//! oracle that verifies the tableau pipeline's output.
//!
//! Where the tableau method (Section 5.2) derives a model from a proof
//! object, this engine searches *model space* directly, in the style of
//! bounded synthesis (Gerstacker/Klein/Finkbeiner) and synchronization
//! synthesis (Samanta et al.): guess a candidate structure under a size
//! bound, verify it with the existing CTL model checker, derive a
//! blocking counterexample from the violated conjunct, prune, repeat —
//! widening the bound when the space at the current bound is exhausted.
//!
//! # Candidate space
//!
//! A candidate is determined by three coordinates, enumerated in a
//! fixed, thread-count-independent order:
//!
//! 1. **The admissible-valuation universe.** The propositional conjuncts
//!    of the coupling specification (and, when no nonmasking tolerance
//!    is in play, of the global specification) must hold at *every*
//!    reachable state of any valid model — every tolerance label keeps
//!    `AG(coupling)`, and `AG` propagates along exactly the edges a
//!    model contains. Valuations violating them are discarded up front,
//!    as is (iteratively) any valuation one of whose fault outcomes is
//!    discarded or lands outside the safety tier its tolerance demands.
//!    An **empty admissible initial set after this cascade is a sound
//!    impossibility certificate** on its own: no transition structure
//!    can repair a propositional violation.
//! 2. **The obligation-queue bound `b`** (the iteratively widened size
//!    bound). Model states are pairs `(valuation, queue)` where the
//!    queue holds the pending `AF`-eventuality obligations in arrival
//!    order, capped at length `b`. The queue is what lets one valuation
//!    appear as several model states — the bounded memory a
//!    starvation-free scheduler needs. Program transitions come from a
//!    *menu*: all single-process valuation changes compatible with the
//!    applicable `AXᵢ` conjuncts, scheduled so the queue's head process
//!    moves freely while other processes move only to witness binding
//!    `EXᵢ` conjuncts (a FIFO discipline); with an empty queue every
//!    process moves freely. Fault transitions are never guessed: they
//!    are derived from the fault actions, outcome by outcome, exactly
//!    as fault closure demands.
//! 3. **A deletion set** over the menu's program transitions — the
//!    counterexample-guided part. When the checker rejects a candidate,
//!    the violated eventuality yields an avoidance region, and the
//!    children delete region edges (a bulk attractor-style repair
//!    first, then single edges). Every examined deletion set enters a
//!    blocking store, so no candidate is ever examined twice.
//!
//! Every accepted candidate passes `verify_semantic` (the three
//! requirements of Section 3, model-checked) *and* the full extraction
//! pipeline — shared-variable introduction, skeleton extraction, the
//! explore/re-verify refinement loop — so a CEGIS "solved" outcome
//! carries exactly the guarantees of a tableau one. When the bounded
//! space is exhausted, the engine builds the tableau certificate: a
//! deleted root upgrades the outcome to a sound `Impossible`; an alive
//! root returns [`AbortReason::CegisBoundExhausted`] (satisfiable, but
//! not within the bound). The engine never claims an impossibility it
//! cannot prove.
//!
//! # Determinism
//!
//! The search is sequential, and every collection it iterates is
//! index-ordered (hash maps serve only interning and membership), so
//! the candidate sequence — and therefore the outcome, the profile
//! counters, and any cap abort — is identical at every thread count.

use crate::extract::{
    extract_program, introduce_shared_variables, refine_guards, ExtractProfile,
    DEFAULT_EXTRACT_REFINE_ROUNDS,
};
use crate::problem::{SynthesisProblem, Tolerance};
use crate::synthesize::{
    aborted, Impossibility, SynthesisOutcome, SynthesisStats, Synthesized, ThreadPlan,
};
use crate::verify::{verify_semantic, verify_semantic_ok};
use ftsyn_ctl::{Closure, Formula, FormulaArena, FormulaId, Owner, PropId, PropTable};
use ftsyn_guarded::fault_set_size;
use ftsyn_guarded::interp::explore;
use ftsyn_kripke::{FtKripke, PropSet, State, StateId, TransKind};
use ftsyn_tableau::{
    apply_deletion_rules_governed, apply_deletion_rules_profiled, build_shared_cache_governed,
    AbortReason, CertMode, FaultSpec, Governor, Phase,
};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Tuning knobs of the bounded search. The defaults are generous enough
/// for the golden corpus; tests tighten them to exercise the structured
/// exhaustion and abort paths.
#[derive(Clone, Debug)]
pub struct CegisConfig {
    /// Ceiling for the obligation-queue bound. The bound never needs to
    /// exceed the number of `AF` conjuncts (queue entries are distinct
    /// clauses), so the effective maximum is
    /// `min(max_bound, #AF-conjuncts)`.
    pub max_bound: usize,
    /// Engine-internal ceiling on candidates examined across all bounds
    /// (independent of any [`ftsyn_tableau::Budget`] cap); reaching it
    /// routes to the certificate instead of aborting.
    pub max_candidates: usize,
    /// Ceiling on admissible valuations; larger universes route to the
    /// tableau certificate (the bounded search would thrash).
    pub max_universe: usize,
    /// Ceiling on base-graph states per bound.
    pub max_states: usize,
    /// Maximum single-edge children proposed per counterexample.
    pub max_children: usize,
}

impl Default for CegisConfig {
    fn default() -> CegisConfig {
        CegisConfig {
            max_bound: 8,
            max_candidates: 512,
            max_universe: 4096,
            max_states: 50_000,
            max_children: 12,
        }
    }
}

/// Deterministic counters of one CEGIS run, reported through
/// [`SynthesisStats::cegis_profile`] and bench JSON. Identical at every
/// thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CegisProfile {
    /// Admissible valuations after the propositional + fault-image
    /// cascade.
    pub universe: usize,
    /// Valuations the cascade discarded.
    pub banned: usize,
    /// Specification conjuncts the classifier could not turn into
    /// structural constraints (still enforced — by the oracle).
    pub opaque_conjuncts: usize,
    /// Candidate models examined (the governor's candidate counter).
    pub candidates: usize,
    /// Candidates the checker or the extraction oracle rejected.
    pub oracle_rejections: usize,
    /// Blocking-store entries (deletion sets never to be revisited).
    pub blocked: usize,
    /// Largest obligation-queue bound attempted.
    pub max_bound_tried: usize,
    /// Bound at which the accepted candidate was found.
    pub solved_at_bound: Option<usize>,
    /// Largest base graph (states before deletion) across bounds.
    pub peak_base_states: usize,
    /// Tableau nodes of the negative certificate (0 when the search
    /// succeeded and no certificate was needed).
    pub certificate_nodes: usize,
}

/// [`cegis_synthesize_with_config`] under the default [`CegisConfig`].
pub fn cegis_synthesize(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
) -> SynthesisOutcome {
    cegis_synthesize_with_config(problem, plan, gov, &CegisConfig::default())
}

/// Runs the CEGIS bounded-synthesis engine on `problem`.
///
/// Returns [`SynthesisOutcome::Solved`] with a fully verified model and
/// extracted program (no tableau artifacts), a sound
/// [`SynthesisOutcome::Impossible`] (propositional cascade, or deleted
/// certificate root), or [`SynthesisOutcome::Aborted`] with
/// [`Phase::Cegis`] when a budget trips or the bounded space is
/// exhausted while the certificate shows the spec satisfiable.
pub fn cegis_synthesize_with_config(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
    config: &CegisConfig,
) -> SynthesisOutcome {
    let start = Instant::now();
    if let Some(g) = gov {
        g.enter_phase(Phase::Cegis);
    }
    let mut stats = SynthesisStats {
        fault_size: fault_set_size(&problem.faults),
        ..SynthesisStats::default()
    };
    let spec_formula = problem.spec.formula(&mut problem.arena);
    stats.spec_length = problem.arena.length(spec_formula);
    let mut profile = CegisProfile::default();

    let outcome = search(problem, plan, gov, config, &mut stats, &mut profile);
    stats.cegis_profile = profile;
    match outcome {
        Search::Solved(mut solved) => {
            stats.elapsed = start.elapsed();
            stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());
            solved.stats = stats;
            SynthesisOutcome::Solved(solved)
        }
        Search::Impossible => {
            stats.elapsed = start.elapsed();
            stats.residual_time = stats.elapsed.saturating_sub(stats.phase_total());
            SynthesisOutcome::Impossible(Impossibility { stats })
        }
        Search::Aborted(reason) => aborted(Phase::Cegis, reason, None, stats, start),
    }
}

enum Search {
    Solved(Box<Synthesized>),
    Impossible,
    Aborted(AbortReason),
}

fn search(
    problem: &mut SynthesisProblem,
    plan: ThreadPlan,
    gov: Option<&Governor>,
    config: &CegisConfig,
    stats: &mut SynthesisStats,
    profile: &mut CegisProfile,
) -> Search {
    // ---- Classification + universe -------------------------------------
    let classified = Classified::from_problem(problem);
    profile.opaque_conjuncts = classified.opaque;

    let universe = if classified.init_propositional && classified.af.len() <= 32 {
        Universe::build(problem, &classified, config)
    } else {
        // A non-propositional initial condition (or an obligation set
        // beyond any sensible bound) leaves the enumerator nothing
        // sound to enumerate; the certificate below decides exactly.
        None
    };

    let mut candidates = 0usize;
    let mut exhausted_bound = 0usize;
    if let Some(u) = &universe {
        profile.universe = u.vals.len();
        profile.banned = u.banned_count;
        if u.init_vals.is_empty() {
            // Sound fast path: the propositional skeleton of the spec
            // admits no initial state, whatever the transition
            // structure — see the module docs.
            return Search::Impossible;
        }
        let max_bound = config.max_bound.min(classified.af.len());
        for bound in 0..=max_bound {
            profile.max_bound_tried = bound;
            exhausted_bound = bound;
            let Some(base) = BaseGraph::build(problem, &classified, u, bound, config) else {
                continue; // unrepresentable (or too large) at this bound
            };
            profile.peak_base_states = profile.peak_base_states.max(base.states.len());
            let result = explore_bound(
                problem,
                &classified,
                u,
                &base,
                config,
                gov,
                &mut candidates,
                profile,
                stats,
            );
            profile.candidates = candidates;
            match result {
                BoundResult::Solved(s) => {
                    profile.solved_at_bound = Some(bound);
                    return Search::Solved(s);
                }
                BoundResult::Exhausted => {}
                BoundResult::CapHit => break,
                BoundResult::Aborted(r) => return Search::Aborted(r),
            }
        }
    }

    // ---- Negative certificate ------------------------------------------
    // The bounded space is spent. Build the tableau certificate: a dead
    // root is a complete impossibility proof (Corollary 7.2); an alive
    // root means the bound was too small — a structured abort, never a
    // false "impossible".
    let roots = problem.closure_roots();
    let spec_formula = roots[0];
    let t_build = Instant::now();
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    stats.closure_size = closure.len();
    let tol_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels: tol_labels,
    };
    let mut root_label = closure.empty_label();
    root_label.insert(
        closure
            .index_of(spec_formula)
            .expect("spec is a closure root"),
    );
    let build_result = build_shared_cache_governed(
        &closure,
        &problem.props,
        root_label,
        &fault_spec,
        plan.build.max(1),
        None,
        gov,
    );
    let (mut tableau, build_profile, _fills) = match build_result {
        Ok(ok) => ok,
        Err(a) => {
            stats.build_time = t_build.elapsed();
            stats.build_profile = a.profile;
            stats.tableau_nodes = a.nodes;
            return Search::Aborted(a.reason);
        }
    };
    stats.build_time = t_build.elapsed();
    stats.build_profile = build_profile;
    stats.tableau_nodes = tableau.len();
    profile.certificate_nodes = tableau.len();
    let t_del = Instant::now();
    let deletion_result = match gov {
        Some(g) => apply_deletion_rules_governed(&mut tableau, &closure, problem.mode, g),
        None => Ok(apply_deletion_rules_profiled(
            &mut tableau,
            &closure,
            problem.mode,
        )),
    };
    let (deletion, deletion_profile) = match deletion_result {
        Ok(ok) => ok,
        Err(a) => {
            stats.deletion = a.stats;
            stats.deletion_profile = a.profile;
            stats.deletion_time = t_del.elapsed();
            return Search::Aborted(a.reason);
        }
    };
    stats.deletion = deletion;
    stats.deletion_profile = deletion_profile;
    stats.deletion_time = t_del.elapsed();
    let (alive_and, alive_or) = tableau.alive_counts();
    stats.alive_and = alive_and;
    stats.alive_or = alive_or;
    if !tableau.alive(tableau.root()) {
        return Search::Impossible;
    }
    Search::Aborted(AbortReason::CegisBoundExhausted {
        bound: exhausted_bound,
        candidates,
    })
}

// ====================================================================
// Conjunct classification
// ====================================================================

/// One classified non-eventuality modal conjunct: an `Or` of
/// propositional "antecedent" parts — the clause *binds* where all of
/// them are false — plus modal parts.
#[derive(Clone, Debug)]
enum Clause {
    /// `antes ∨ AXᵢ body`: every `i`-transition from a binding state
    /// must reach `body` (propositional).
    Ax {
        proc: usize,
        antes: Vec<FormulaId>,
        body: FormulaId,
    },
    /// `antes ∨ EXᵢ body ∨ EXⱼ body' ∨ …`: a binding state needs at
    /// least one listed transition. A single option also makes its
    /// process a *witness mover* under the queue discipline.
    ExAny {
        antes: Vec<FormulaId>,
        options: Vec<(usize, FormulaId)>,
    },
    /// `antes ∨ AG body` (invariance, `body` propositional): a binding
    /// state satisfies `body` and every transition out of it — any
    /// mover — must land on `body` again. For the permanence idiom
    /// (`p ⇒ AG p`) the binding re-establishes itself at the target, so
    /// the one-step filter enforces the whole invariant.
    AgInv {
        antes: Vec<FormulaId>,
        body: FormulaId,
    },
}

/// One `antes ∨ AF goal` conjunct: a binding state owes the eventuality
/// `goal` (propositional) along every fault-free fullpath.
#[derive(Clone, Debug)]
struct AfClause {
    antes: Vec<FormulaId>,
    goal: FormulaId,
    /// The process owning every proposition of `goal`, when unique —
    /// the queue discipline's "obliged mover".
    owner: Option<usize>,
}

/// The specification, split into the fragments the enumerator can
/// enforce structurally. Anything else is counted `opaque` and left to
/// the oracle.
struct Classified {
    init: FormulaId,
    init_propositional: bool,
    coupling_props: Vec<FormulaId>,
    global_props: Vec<FormulaId>,
    coupling_clauses: Vec<Clause>,
    global_clauses: Vec<Clause>,
    af: Vec<AfClause>,
    opaque: usize,
    /// Whether any fault action carries nonmasking tolerance (states
    /// violating the global propositional tier are then admissible).
    use_nonmasking: bool,
}

impl Classified {
    fn from_problem(problem: &SynthesisProblem) -> Classified {
        let arena = &problem.arena;
        let init = problem.spec.init;
        let mut out = Classified {
            init,
            init_propositional: is_propositional(arena, init),
            coupling_props: Vec::new(),
            global_props: Vec::new(),
            coupling_clauses: Vec::new(),
            global_clauses: Vec::new(),
            af: Vec::new(),
            opaque: 0,
            use_nonmasking: (0..problem.faults.len())
                .any(|i| problem.tolerance.of(i) == Tolerance::Nonmasking),
        };
        let globals = arena.conjuncts(problem.spec.global);
        let couplings = arena.conjuncts(problem.spec.coupling);
        for (scope_global, conjuncts) in [(true, globals), (false, couplings)] {
            for c in conjuncts {
                out.classify(arena, &problem.props, c, scope_global);
            }
        }
        out
    }

    fn classify(&mut self, arena: &FormulaArena, props: &PropTable, c: FormulaId, global: bool) {
        if is_propositional(arena, c) {
            if matches!(arena.get(c), Formula::True) {
                return;
            }
            if global {
                self.global_props.push(c);
            } else {
                self.coupling_props.push(c);
            }
            return;
        }
        // Work on or-part lists so `Or(a, And(x, y))` distributes into
        // `Or(a, x) ∧ Or(a, y)` (the implication-into-conjunction idiom
        // of the mutex spec). Capped: runaway distribution turns the
        // conjunct opaque rather than exploding.
        let mut work: Vec<Vec<FormulaId>> = vec![or_parts(arena, c)];
        let mut emitted = 0usize;
        while let Some(parts) = work.pop() {
            if emitted + work.len() > 32 {
                self.opaque += 1;
                return;
            }
            if let Some(pos) = parts
                .iter()
                .position(|&p| matches!(arena.get(p), Formula::And(_, _)))
            {
                for k in arena.conjuncts(parts[pos]) {
                    let mut next = parts.clone();
                    next[pos] = k;
                    work.push(next);
                }
                continue;
            }
            emitted += 1;
            if !self.classify_flat(arena, props, &parts, global) {
                self.opaque += 1;
            }
        }
    }

    /// Classifies one flat or-clause (no `And` parts). Returns whether
    /// it was representable.
    fn classify_flat(
        &mut self,
        arena: &FormulaArena,
        props: &PropTable,
        parts: &[FormulaId],
        global: bool,
    ) -> bool {
        let mut antes = Vec::new();
        let mut modal = Vec::new();
        for &p in parts {
            if is_propositional(arena, p) {
                antes.push(p);
            } else {
                modal.push(p);
            }
        }
        if modal.is_empty() {
            // Unreachable in practice: a conjunct all of whose or-parts
            // are propositional is itself propositional and was
            // classified before distribution. Counted opaque if hit.
            return false;
        }
        if modal.len() == 1 {
            match arena.get(modal[0]) {
                Formula::Ax(i, b) if is_propositional(arena, b) => {
                    let clause = Clause::Ax {
                        proc: i,
                        antes,
                        body: b,
                    };
                    if global {
                        self.global_clauses.push(clause);
                    } else {
                        self.coupling_clauses.push(clause);
                    }
                    return true;
                }
                Formula::Ex(i, b) if is_propositional(arena, b) => {
                    let clause = Clause::ExAny {
                        antes,
                        options: vec![(i, b)],
                    };
                    if global {
                        self.global_clauses.push(clause);
                    } else {
                        self.coupling_clauses.push(clause);
                    }
                    return true;
                }
                Formula::Au(g, h)
                    if matches!(arena.get(g), Formula::True)
                        && is_propositional(arena, h) =>
                {
                    let owner = goal_owner(arena, props, h);
                    self.af.push(AfClause {
                        antes,
                        goal: h,
                        owner,
                    });
                    return true;
                }
                Formula::Aw(f, b)
                    if matches!(arena.get(f), Formula::False)
                        && is_propositional(arena, b) =>
                {
                    let clause = Clause::AgInv { antes, body: b };
                    if global {
                        self.global_clauses.push(clause);
                    } else {
                        self.coupling_clauses.push(clause);
                    }
                    return true;
                }
                _ => return false,
            }
        }
        // Several modal parts: representable iff all are EX options.
        let mut options = Vec::new();
        for m in modal {
            match arena.get(m) {
                Formula::Ex(i, b) if is_propositional(arena, b) => options.push((i, b)),
                _ => return false,
            }
        }
        let clause = Clause::ExAny { antes, options };
        if global {
            self.global_clauses.push(clause);
        } else {
            self.coupling_clauses.push(clause);
        }
        true
    }
}

fn is_propositional(arena: &FormulaArena, f: FormulaId) -> bool {
    match arena.get(f) {
        Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_) => true,
        Formula::And(a, b) | Formula::Or(a, b) => {
            is_propositional(arena, a) && is_propositional(arena, b)
        }
        _ => false,
    }
}

/// Evaluates a propositional formula against a valuation.
fn eval_prop(arena: &FormulaArena, f: FormulaId, val: &PropSet) -> bool {
    match arena.get(f) {
        Formula::True => true,
        Formula::False => false,
        Formula::Prop(p) => val.contains(p),
        Formula::NegProp(p) => !val.contains(p),
        Formula::And(a, b) => eval_prop(arena, a, val) && eval_prop(arena, b, val),
        Formula::Or(a, b) => eval_prop(arena, a, val) || eval_prop(arena, b, val),
        _ => unreachable!("eval_prop on a modal formula"),
    }
}

fn or_parts(arena: &FormulaArena, f: FormulaId) -> Vec<FormulaId> {
    let mut out = Vec::new();
    let mut stack = vec![f];
    while let Some(x) = stack.pop() {
        match arena.get(x) {
            Formula::Or(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            _ => out.push(x),
        }
    }
    out
}

fn props_in(arena: &FormulaArena, f: FormulaId, out: &mut Vec<PropId>) {
    match arena.get(f) {
        Formula::Prop(p) | Formula::NegProp(p) => out.push(p),
        Formula::And(a, b)
        | Formula::Or(a, b)
        | Formula::Au(a, b)
        | Formula::Eu(a, b)
        | Formula::Aw(a, b)
        | Formula::Ew(a, b) => {
            props_in(arena, a, out);
            props_in(arena, b, out);
        }
        Formula::Ax(_, g) | Formula::Ex(_, g) => props_in(arena, g, out),
        Formula::True | Formula::False => {}
    }
}

fn goal_owner(arena: &FormulaArena, props: &PropTable, goal: FormulaId) -> Option<usize> {
    let mut ps = Vec::new();
    props_in(arena, goal, &mut ps);
    let mut owner = None;
    for p in ps {
        match props.owner(p) {
            Owner::Process(i) => match owner {
                None => owner = Some(i),
                Some(j) if j == i => {}
                Some(_) => return None,
            },
            Owner::Env => return None,
        }
    }
    owner
}

// ====================================================================
// Valuation universe
// ====================================================================

struct Universe {
    /// All admissible valuations (cascade survivors), index-ordered.
    vals: Vec<PropSet>,
    index: HashMap<PropSet, u32>,
    /// Whether the valuation also satisfies the *global* propositional
    /// tier (the safety tier masking/fail-safe images must stay in).
    safe: Vec<bool>,
    init_vals: Vec<u32>,
    banned_count: usize,
    /// Menu of single-process moves per valuation, in
    /// `(mover, target)` order.
    menu: Vec<Vec<(usize, u32)>>,
}

impl Universe {
    fn build(
        problem: &SynthesisProblem,
        cls: &Classified,
        config: &CegisConfig,
    ) -> Option<Universe> {
        let arena = &problem.arena;
        let props = &problem.props;
        let n_props = props.len();
        let n_procs = arena.num_procs();

        // Ownership groups: one per process, plus the environment.
        let mut groups: Vec<Vec<PropId>> =
            (0..n_procs).map(|i| props.props_of_process(i)).collect();
        let env: Vec<PropId> = props
            .iter()
            .filter(|&p| props.owner(p) == Owner::Env)
            .collect();
        if !env.is_empty() {
            groups.push(env);
        }
        groups.retain(|g| !g.is_empty());
        if groups.iter().any(|g| g.len() > 16) {
            return None;
        }

        // Admission conjuncts: the coupling propositional tier always;
        // the global tier too when every tolerance keeps safety
        // invariant.
        let mut admission: Vec<FormulaId> = cls.coupling_props.clone();
        if !cls.use_nonmasking {
            admission.extend(cls.global_props.iter().copied());
        }

        // Per-group assignments, pre-filtered by group-local conjuncts.
        let mut local: Vec<Vec<PropSet>> = Vec::new();
        for g in &groups {
            let group_set: HashSet<PropId> = g.iter().copied().collect();
            let local_conj: Vec<FormulaId> = admission
                .iter()
                .copied()
                .filter(|&c| {
                    let mut ps = Vec::new();
                    props_in(arena, c, &mut ps);
                    !ps.is_empty() && ps.iter().all(|p| group_set.contains(p))
                })
                .collect();
            let mut assignments = Vec::new();
            for mask in 0u32..(1u32 << g.len()) {
                let mut v = PropSet::with_capacity(n_props);
                for (k, &p) in g.iter().enumerate() {
                    if mask & (1 << k) != 0 {
                        v.insert(p);
                    }
                }
                if local_conj.iter().all(|&c| eval_prop(arena, c, &v)) {
                    assignments.push(v);
                }
            }
            if assignments.is_empty() {
                // No assignment for this group satisfies the admission
                // tier: the universe — and the problem — is empty.
                return Some(Universe {
                    vals: Vec::new(),
                    index: HashMap::new(),
                    safe: Vec::new(),
                    init_vals: Vec::new(),
                    banned_count: 0,
                    menu: Vec::new(),
                });
            }
            local.push(assignments);
        }

        // Product (group 0 outermost), filtered by the full admission
        // tier.
        let total: usize = local.iter().map(Vec::len).product();
        if total > config.max_universe * 16 {
            return None;
        }
        let mut vals: Vec<PropSet> = Vec::new();
        let mut idx = vec![0usize; local.len()];
        'outer: loop {
            let mut v = PropSet::with_capacity(n_props);
            for (gi, &k) in idx.iter().enumerate() {
                for p in local[gi][k].iter() {
                    v.insert(p);
                }
            }
            if admission.iter().all(|&c| eval_prop(arena, c, &v))
                && cls
                    .coupling_clauses
                    .iter()
                    .all(|c| ag_inv_holds(arena, c, &v))
                && (cls.use_nonmasking
                    || cls.global_clauses.iter().all(|c| ag_inv_holds(arena, c, &v)))
            {
                vals.push(v);
                if vals.len() > config.max_universe {
                    return None;
                }
            }
            for gi in (0..idx.len()).rev() {
                idx[gi] += 1;
                if idx[gi] < local[gi].len() {
                    continue 'outer;
                }
                idx[gi] = 0;
            }
            break;
        }

        let index_of = |vals: &[PropSet]| -> HashMap<PropSet, u32> {
            vals.iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i as u32))
                .collect()
        };
        let mut index = index_of(&vals);
        let safe_of = |v: &PropSet| {
            cls.global_props.iter().all(|&c| eval_prop(arena, c, v))
                && cls.global_clauses.iter().all(|c| ag_inv_holds(arena, c, v))
        };
        let mut safe: Vec<bool> = vals.iter().map(safe_of).collect();

        // Fault-image cascade.
        let mut banned = vec![false; vals.len()];
        loop {
            let mut changed = false;
            for vi in 0..vals.len() {
                if banned[vi] {
                    continue;
                }
                let v = &vals[vi];
                'actions: for (ai, action) in problem.faults.iter().enumerate() {
                    if !action.enabled(v) {
                        continue;
                    }
                    for phi in action.outcomes(v, n_props) {
                        let ok = match index.get(&phi) {
                            None => false,
                            Some(&ti) => {
                                !banned[ti as usize]
                                    && (problem.tolerance.of(ai) == Tolerance::Nonmasking
                                        || safe[ti as usize])
                            }
                        };
                        if !ok {
                            banned[vi] = true;
                            changed = true;
                            break 'actions;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Compact to the survivors.
        let banned_count = banned.iter().filter(|&&b| b).count();
        let mut kept = Vec::new();
        let mut kept_safe = Vec::new();
        for (i, v) in vals.into_iter().enumerate() {
            if !banned[i] {
                kept_safe.push(safe[i]);
                kept.push(v);
            }
        }
        let vals = kept;
        safe = kept_safe;
        index = index_of(&vals);
        let init_vals: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(i, v)| safe[*i] && eval_prop(arena, cls.init, v))
            .map(|(i, _)| i as u32)
            .collect();

        // Menu of single-process valuation moves. Bucket valuations by
        // their non-`i` propositions so only genuinely `i`-local pairs
        // are examined; bucket member lists are ascending, keeping the
        // (mover, target) order deterministic.
        let mut menu: Vec<Vec<(usize, u32)>> = vec![Vec::new(); vals.len()];
        for i in 0..n_procs {
            let mine: Vec<PropId> = props.props_of_process(i);
            let key_of = |v: &PropSet| -> PropSet {
                let mut k = v.clone();
                for &p in &mine {
                    k.remove(p);
                }
                k
            };
            let mut buckets: HashMap<PropSet, Vec<u32>> = HashMap::new();
            for (vi, v) in vals.iter().enumerate() {
                buckets.entry(key_of(v)).or_default().push(vi as u32);
            }
            for (ui, u) in vals.iter().enumerate() {
                let Some(bucket) = buckets.get(&key_of(u)) else {
                    continue;
                };
                for &ti in bucket {
                    let t = &vals[ti as usize];
                    // Safety tier: a safe state never moves out of it.
                    if safe[ui] && !safe[ti as usize] {
                        continue;
                    }
                    // Binding AX clauses of the mover: coupling always,
                    // global from safe sources.
                    if !cls
                        .coupling_clauses
                        .iter()
                        .all(|c| ax_permits(arena, c, i, u, t))
                    {
                        continue;
                    }
                    if safe[ui]
                        && !cls
                            .global_clauses
                            .iter()
                            .all(|c| ax_permits(arena, c, i, u, t))
                    {
                        continue;
                    }
                    menu[ui].push((i, ti));
                }
            }
        }

        Some(Universe {
            vals,
            index,
            safe,
            init_vals,
            banned_count,
            menu,
        })
    }
}

/// Whether mover `i`'s step `u → t` is allowed by a structural clause:
/// an `AX` of `i` binding at `u` requires its body at `t`; an
/// invariance clause binding at `u` requires its body at `t` whoever
/// moves (the `AG` obligation rides every outgoing edge).
fn ax_permits(arena: &FormulaArena, c: &Clause, i: usize, u: &PropSet, t: &PropSet) -> bool {
    match c {
        Clause::Ax { proc, antes, body } if *proc == i => {
            antes.iter().any(|&a| eval_prop(arena, a, u)) || eval_prop(arena, *body, t)
        }
        Clause::AgInv { antes, body } => {
            antes.iter().any(|&a| eval_prop(arena, a, u)) || eval_prop(arena, *body, t)
        }
        _ => true,
    }
}

/// The state-level consequence of an invariance clause: where it binds,
/// its body holds (`AG body` includes the binding state itself). Other
/// clause forms impose no state predicate.
fn ag_inv_holds(arena: &FormulaArena, c: &Clause, v: &PropSet) -> bool {
    match c {
        Clause::AgInv { antes, body } => {
            antes.iter().any(|&a| eval_prop(arena, a, v)) || eval_prop(arena, *body, v)
        }
        _ => true,
    }
}

// ====================================================================
// Base graph at one queue bound
// ====================================================================

#[derive(Clone, Debug)]
struct BaseState {
    val: u32,
    /// Global ids (into [`BaseGraph::program`]) of outgoing program
    /// edges.
    prog: Vec<u32>,
    /// `(action index, target state)` fault edges.
    faults: Vec<(usize, u32)>,
    /// Bitmask of the AF clauses in this state's obligation queue: the
    /// eventualities the state actually owes. States reached only
    /// through a fail-safe or nonmasking fault carry none (those
    /// tolerance labels keep safety, not the spec's `AF` clauses).
    pending: u32,
    /// A fault outcome's queue overflowed the bound: the state cannot
    /// exist in any candidate at this bound.
    fault_overflow: bool,
}

struct BaseGraph {
    states: Vec<BaseState>,
    /// Flat program-edge table: `(source, mover, target)`.
    program: Vec<(u32, usize, u32)>,
    init_states: Vec<u32>,
}

impl BaseGraph {
    fn build(
        problem: &SynthesisProblem,
        cls: &Classified,
        u: &Universe,
        bound: usize,
        config: &CegisConfig,
    ) -> Option<BaseGraph> {
        let arena = &problem.arena;
        let fault_free = problem.mode == CertMode::FaultFree;
        let n_props = problem.props.len();

        let mut states: Vec<BaseState> = Vec::new();
        let mut queues: Vec<Vec<u8>> = Vec::new();
        let mut program: Vec<(u32, usize, u32)> = Vec::new();
        let mut index: HashMap<(u32, Vec<u8>), u32> = HashMap::new();
        let mut intern =
            |val: u32, queue: Vec<u8>, states: &mut Vec<BaseState>, queues: &mut Vec<Vec<u8>>| {
                *index.entry((val, queue.clone())).or_insert_with(|| {
                    let pending = queue.iter().fold(0u32, |m, &ci| m | (1 << ci));
                    states.push(BaseState {
                        val,
                        prog: Vec::new(),
                        faults: Vec::new(),
                        pending,
                        fault_overflow: false,
                    });
                    queues.push(queue);
                    (states.len() - 1) as u32
                })
            };

        let mut init_states = Vec::new();
        for &iv in &u.init_vals {
            let q0 = initial_queue(arena, cls, &u.vals[iv as usize]);
            if q0.len() > bound {
                continue;
            }
            init_states.push(intern(iv, q0, &mut states, &mut queues));
        }
        if init_states.is_empty() {
            return None;
        }

        let mut cursor = 0usize;
        while cursor < states.len() {
            if states.len() > config.max_states {
                return None;
            }
            let sid = cursor as u32;
            let (val_idx, queue) = (states[cursor].val, queues[cursor].clone());
            cursor += 1;
            let val = &u.vals[val_idx as usize];

            // Program edges under the queue discipline.
            for (mover, target) in
                scheduled_moves(arena, cls, u, val_idx, &queue, bound, fault_free)
            {
                let tval = &u.vals[target as usize];
                let q = step_queue(arena, cls, &queue, tval, None, fault_free);
                debug_assert!(q.len() <= bound);
                let tid = intern(target, q, &mut states, &mut queues);
                let eid = program.len() as u32;
                program.push((sid, mover, tid));
                states[sid as usize].prog.push(eid);
            }

            // Fault edges, outcome by outcome (never guessed).
            for (ai, action) in problem.faults.iter().enumerate() {
                if !action.enabled(val) {
                    continue;
                }
                for phi in action.outcomes(val, n_props) {
                    let target = *u
                        .index
                        .get(&phi)
                        .expect("the cascade kept only fault-closed valuations");
                    let q = step_queue(
                        arena,
                        cls,
                        &queue,
                        &u.vals[target as usize],
                        Some(problem.tolerance.of(ai)),
                        fault_free,
                    );
                    if q.len() > bound {
                        states[sid as usize].fault_overflow = true;
                        continue;
                    }
                    let tid = intern(target, q, &mut states, &mut queues);
                    states[sid as usize].faults.push((ai, tid));
                }
            }
        }

        Some(BaseGraph {
            states,
            program,
            init_states,
        })
    }
}

fn af_active(arena: &FormulaArena, c: &AfClause, val: &PropSet) -> bool {
    !eval_prop(arena, c.goal, val) && !c.antes.iter().any(|&a| eval_prop(arena, a, val))
}

fn initial_queue(arena: &FormulaArena, cls: &Classified, val: &PropSet) -> Vec<u8> {
    (0..cls.af.len())
        .filter(|&ci| af_active(arena, &cls.af[ci], val))
        .map(|ci| ci as u8)
        .collect()
}

/// Advances the obligation queue across one transition. Obligations are
/// discharged only by reaching their goal (`AF` binds from the moment
/// the antecedents fail, along the whole fullpath). A fault transition
/// under fault-free certification starts fresh fullpaths, and the
/// perturbed state owes whatever its tolerance label demands: a masking
/// fault re-founds the queue on the clauses binding at the image, while
/// fail-safe and nonmasking faults clear it — their labels keep safety
/// (and, for nonmasking, convergence, which the good-set analysis
/// enforces separately), not the spec's `AF` clauses. Under fault-prone
/// certification fault edges are ordinary path edges, so every
/// tolerance steps the queue like a program move.
fn step_queue(
    arena: &FormulaArena,
    cls: &Classified,
    q: &[u8],
    target: &PropSet,
    fault: Option<Tolerance>,
    fault_free: bool,
) -> Vec<u8> {
    if fault_free {
        match fault {
            Some(Tolerance::Masking) => {
                let mut out: Vec<u8> = q
                    .iter()
                    .copied()
                    .filter(|&ci| af_active(arena, &cls.af[ci as usize], target))
                    .collect();
                for ci in 0..cls.af.len() {
                    if af_active(arena, &cls.af[ci], target) && !out.contains(&(ci as u8)) {
                        out.push(ci as u8);
                    }
                }
                return out;
            }
            Some(_) => return Vec::new(),
            None => {}
        }
    }
    let mut out: Vec<u8> = q
        .iter()
        .copied()
        .filter(|&ci| !eval_prop(arena, cls.af[ci as usize].goal, target))
        .collect();
    for ci in 0..cls.af.len() {
        if af_active(arena, &cls.af[ci], target) && !out.contains(&(ci as u8)) {
            out.push(ci as u8);
        }
    }
    out
}

/// The scheduled single-process moves at `(val, queue)`: the queue's
/// effective head moves freely, witness movers serve their binding
/// single-option `EX` clauses, everything else waits. With an empty
/// queue — or an un-ownable or fully stuck head — every process moves
/// freely. Only moves whose target queue fits the bound are usable.
fn scheduled_moves(
    arena: &FormulaArena,
    cls: &Classified,
    u: &Universe,
    val_idx: u32,
    queue: &[u8],
    bound: usize,
    fault_free: bool,
) -> Vec<(usize, u32)> {
    let val = &u.vals[val_idx as usize];
    let menu = &u.menu[val_idx as usize];
    let usable = |target: u32| -> bool {
        step_queue(arena, cls, queue, &u.vals[target as usize], None, fault_free).len() <= bound
    };

    // Effective head: the first queued obligation whose obliged process
    // has a usable move.
    let mut head: Option<usize> = None;
    let mut all_movers = queue.is_empty();
    for &ci in queue {
        match cls.af[ci as usize].owner {
            None => {
                all_movers = true;
                break;
            }
            Some(i) => {
                if menu.iter().any(|&(m, t)| m == i && usable(t)) {
                    head = Some(i);
                    break;
                }
            }
        }
    }
    if !all_movers && head.is_none() {
        // Every queued process is stuck: release the schedule rather
        // than dead-end (the blocked head resumes once unblocked).
        all_movers = true;
    }
    if all_movers {
        return menu.iter().copied().filter(|&(_, t)| usable(t)).collect();
    }
    let head = head.expect("checked above");

    // Witness movers: processes named by a binding single-option EX
    // clause (coupling always binds; global binds at safe states).
    let binding_ex = |c: &Clause| -> Option<(usize, FormulaId)> {
        match c {
            Clause::ExAny { antes, options }
                if options.len() == 1 && !antes.iter().any(|&a| eval_prop(arena, a, val)) =>
            {
                Some(options[0])
            }
            _ => None,
        }
    };
    let mut witness: Vec<(usize, FormulaId)> = Vec::new();
    for c in &cls.coupling_clauses {
        if let Some(w) = binding_ex(c) {
            witness.push(w);
        }
    }
    if u.safe[val_idx as usize] {
        for c in &cls.global_clauses {
            if let Some(w) = binding_ex(c) {
                witness.push(w);
            }
        }
    }
    let mut out: Vec<(usize, u32)> = Vec::new();
    for &(mover, target) in menu {
        if !usable(target) {
            continue;
        }
        if mover == head
            || witness
                .iter()
                .any(|&(w, body)| w == mover && eval_prop(arena, body, &u.vals[target as usize]))
        {
            out.push((mover, target));
        }
    }
    out
}

// ====================================================================
// Candidate evaluation
// ====================================================================

/// The pruned form of one candidate: the reachable sub-model rooted at
/// the first surviving initial state, plus the base→model index map the
/// counterexample analysis navigates by.
struct Candidate {
    model: FtKripke,
    /// Base-state index → model state id (`None` = not in the model).
    model_of: Vec<Option<u32>>,
}

/// Prunes `deleted` out of the base graph and closes under the
/// structural requirements (reachability, fault closure, binding EX
/// clauses). `None` when no initial state survives.
fn prune(
    problem: &SynthesisProblem,
    cls: &Classified,
    u: &Universe,
    base: &BaseGraph,
    deleted: &[u32],
) -> Option<Candidate> {
    let arena = &problem.arena;
    let n = base.states.len();
    let is_deleted = |eid: u32| -> bool { deleted.binary_search(&eid).is_ok() };
    let mut alive: Vec<bool> = base.states.iter().map(|s| !s.fault_overflow).collect();

    loop {
        // Reachability over surviving edges.
        let mut reach = vec![false; n];
        let mut stack: Vec<u32> = base
            .init_states
            .iter()
            .copied()
            .filter(|&s| alive[s as usize])
            .collect();
        for &s in &stack {
            reach[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            let st = &base.states[s as usize];
            for &eid in &st.prog {
                let (_, _, t) = base.program[eid as usize];
                if !is_deleted(eid) && alive[t as usize] && !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t);
                }
            }
            for &(_, t) in &st.faults {
                if alive[t as usize] && !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        let mut changed = false;
        for (i, r) in reach.iter().enumerate() {
            if alive[i] && !r {
                alive[i] = false;
                changed = true;
            }
        }

        // Local structural requirements.
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let st = &base.states[i];
            // Fault closure: every outcome edge must survive.
            if st.faults.iter().any(|&(_, t)| !alive[t as usize]) {
                alive[i] = false;
                changed = true;
                continue;
            }
            // Binding EX clauses need a surviving witness edge.
            let val = &u.vals[st.val as usize];
            let holds = |c: &Clause| -> bool {
                match c {
                    Clause::ExAny { antes, options } => {
                        antes.iter().any(|&a| eval_prop(arena, a, val))
                            || st.prog.iter().any(|&eid| {
                                if is_deleted(eid) {
                                    return false;
                                }
                                let (_, mover, t) = base.program[eid as usize];
                                alive[t as usize]
                                    && options.iter().any(|&(w, body)| {
                                        w == mover
                                            && eval_prop(
                                                arena,
                                                body,
                                                &u.vals[base.states[t as usize].val as usize],
                                            )
                                    })
                            })
                    }
                    Clause::Ax { .. } | Clause::AgInv { .. } => true,
                }
            };
            let mut ok = cls.coupling_clauses.iter().all(holds);
            if ok && u.safe[st.val as usize] {
                ok = cls.global_clauses.iter().all(holds);
            }
            if !ok {
                alive[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let root = base
        .init_states
        .iter()
        .copied()
        .find(|&s| alive[s as usize])?;

    // Final component: reachable from the chosen root only.
    let mut included = vec![false; n];
    let mut stack = vec![root];
    included[root as usize] = true;
    while let Some(s) = stack.pop() {
        let st = &base.states[s as usize];
        for &eid in &st.prog {
            let (_, _, t) = base.program[eid as usize];
            if !is_deleted(eid) && alive[t as usize] && !included[t as usize] {
                included[t as usize] = true;
                stack.push(t);
            }
        }
        for &(_, t) in &st.faults {
            if alive[t as usize] && !included[t as usize] {
                included[t as usize] = true;
                stack.push(t);
            }
        }
    }

    let mut model = FtKripke::new();
    let mut model_of: Vec<Option<u32>> = vec![None; n];
    for (i, inc) in included.iter().enumerate() {
        if *inc {
            let val = u.vals[base.states[i].val as usize].clone();
            let sid = model.push_state(State::new(val));
            model_of[i] = Some(sid.index() as u32);
        }
    }
    model.add_init(StateId(model_of[root as usize].unwrap()));
    for (i, inc) in included.iter().enumerate() {
        if !*inc {
            continue;
        }
        let from = StateId(model_of[i].unwrap());
        let st = &base.states[i];
        for &eid in &st.prog {
            let (_, mover, t) = base.program[eid as usize];
            if !is_deleted(eid) && included[t as usize] {
                model.add_edge(
                    from,
                    TransKind::Proc(mover),
                    StateId(model_of[t as usize].unwrap()),
                );
            }
        }
        for &(ai, t) in &st.faults {
            debug_assert!(included[t as usize]);
            model.add_edge(
                from,
                TransKind::Fault(ai),
                StateId(model_of[t as usize].unwrap()),
            );
        }
    }

    Some(Candidate { model, model_of })
}

// ====================================================================
// Counterexample analysis → children
// ====================================================================

/// Proposes child deletion sets for a rejected candidate: a bulk
/// attractor-style repair (delete, layer by layer, every region edge
/// that strays from the growing win set) followed by single-edge
/// deletions inside the avoidance region. An empty return means the
/// rejection was unanalyzable (opaque conjunct): the branch dead-ends
/// and stays blocked.
fn propose_children(
    problem: &SynthesisProblem,
    cls: &Classified,
    u: &Universe,
    base: &BaseGraph,
    cand: &Candidate,
    deleted: &[u32],
    config: &CegisConfig,
) -> Vec<Vec<u32>> {
    let arena = &problem.arena;
    let fault_free = problem.mode == CertMode::FaultFree;
    let is_deleted = |eid: u32| deleted.binary_search(&eid).is_ok();
    let n = base.states.len();
    let in_model = |i: usize| cand.model_of[i].is_some();

    // Path successors (the edges AF quantifies over) per included
    // state: `(program edge id or u32::MAX for a fault edge, target)`.
    let succs = |i: usize| -> Vec<(u32, u32)> {
        let st = &base.states[i];
        let mut out: Vec<(u32, u32)> = st
            .prog
            .iter()
            .copied()
            .filter(|&e| !is_deleted(e))
            .map(|e| (e, base.program[e as usize].2))
            .filter(|&(_, t)| in_model(t as usize))
            .collect();
        if !fault_free {
            out.extend(
                st.faults
                    .iter()
                    .filter(|&&(_, t)| in_model(t as usize))
                    .map(|&(_, t)| (u32::MAX, t)),
            );
        }
        out
    };

    // Win set of an AF target: at least one path successor exists and
    // all of them lead in (dead ends fail an open eventuality).
    let af_win = |goal: &dyn Fn(usize) -> bool| -> Vec<bool> {
        let mut win: Vec<bool> = (0..n).map(|i| in_model(i) && goal(i)).collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                if win[i] || !in_model(i) {
                    continue;
                }
                let ss = succs(i);
                if !ss.is_empty() && ss.iter().all(|&(_, t)| win[t as usize]) {
                    win[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return win;
            }
        }
    };

    // First violated obligation: an AF clause *pending* at a safe
    // included state (in the state's obligation queue — so tolerance
    // has already been applied at fault edges) outside its win set, or
    // — under nonmasking — a state that cannot converge to an all-safe
    // program-closed region.
    let mut violation: Option<(Vec<bool>, usize, Option<usize>)> = None;
    for (ci, c) in cls.af.iter().enumerate() {
        let goal = |i: usize| eval_prop(arena, c.goal, &u.vals[base.states[i].val as usize]);
        let win = af_win(&goal);
        let bad = (0..n).find(|&i| {
            in_model(i)
                && u.safe[base.states[i].val as usize]
                && base.states[i].pending & (1 << ci) != 0
                && !win[i]
        });
        if let Some(s) = bad {
            violation = Some((win, s, c.owner));
            break;
        }
    }
    if violation.is_none() && cls.use_nonmasking {
        // Good set: states whose whole program-closure stays safe.
        let mut good: Vec<bool> = (0..n)
            .map(|i| in_model(i) && u.safe[base.states[i].val as usize])
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                if !good[i] {
                    continue;
                }
                let leaky = base.states[i].prog.iter().any(|&e| {
                    !is_deleted(e) && {
                        let t = base.program[e as usize].2 as usize;
                        in_model(t) && !good[t]
                    }
                });
                if leaky {
                    good[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let win = af_win(&|i: usize| good[i]);
        let bad = (0..n).find(|&i| in_model(i) && !win[i]);
        if let Some(s) = bad {
            violation = Some((win, s, None));
        }
    }
    let Some((win, s, obliged)) = violation else {
        return Vec::new();
    };

    // Avoidance region: closure of `s` over path edges between non-win
    // states.
    let mut region = vec![false; n];
    let mut stack = vec![s];
    region[s] = true;
    while let Some(x) = stack.pop() {
        for (_, t) in succs(x) {
            let t = t as usize;
            if !win[t] && !region[t] {
                region[t] = true;
                stack.push(t);
            }
        }
    }

    let mut children: Vec<Vec<u32>> = Vec::new();

    // Bulk attractor repair: wherever a region state can step into the
    // (growing) win set, delete its straying program edges; iterate
    // until the violating state joins or no layer makes progress.
    {
        let mut w = win.clone();
        let mut extra: Vec<u32> = Vec::new();
        loop {
            let mut changed = false;
            for x in 0..n {
                if !region[x] || w[x] {
                    continue;
                }
                let fault_stray = !fault_free
                    && base.states[x]
                        .faults
                        .iter()
                        .any(|&(_, t)| in_model(t as usize) && !w[t as usize]);
                if fault_stray {
                    continue; // fault edges cannot be deleted
                }
                let ss = succs(x);
                if !ss.iter().any(|&(_, t)| w[t as usize]) {
                    continue;
                }
                for &(e, t) in &ss {
                    if e != u32::MAX && !w[t as usize] && !extra.contains(&e) {
                        extra.push(e);
                    }
                }
                w[x] = true;
                changed = true;
            }
            if w[s] || !changed {
                break;
            }
        }
        if w[s] && !extra.is_empty() {
            let mut d = deleted.to_vec();
            d.extend(extra);
            d.sort_unstable();
            d.dedup();
            children.push(d);
        }
    }

    // Single-edge children: program edges into the region. Internal
    // edges first (repair: prefer movers other than the obliged
    // process — the competitor edges that barge the obligation aside),
    // then entry edges from outside (excision: a region that cannot be
    // made to win can still be made unreachable by program moves).
    let mut singles: Vec<(bool, bool, u32)> = Vec::new();
    for x in 0..n {
        if !in_model(x) {
            continue;
        }
        for &e in &base.states[x].prog {
            if is_deleted(e) {
                continue;
            }
            let (_, mover, t) = base.program[e as usize];
            if region[t as usize] {
                singles.push((!region[x], Some(mover) == obliged, e));
            }
        }
    }
    singles.sort_unstable();
    for (_, _, e) in singles.into_iter().take(config.max_children) {
        let mut d = deleted.to_vec();
        d.push(e);
        d.sort_unstable();
        d.dedup();
        children.push(d);
    }
    children
}

// ====================================================================
// The per-bound guess–verify–block loop
// ====================================================================

enum BoundResult {
    Solved(Box<Synthesized>),
    Exhausted,
    CapHit,
    Aborted(AbortReason),
}

#[allow(clippy::too_many_arguments)]
fn explore_bound(
    problem: &mut SynthesisProblem,
    cls: &Classified,
    u: &Universe,
    base: &BaseGraph,
    config: &CegisConfig,
    gov: Option<&Governor>,
    candidates: &mut usize,
    profile: &mut CegisProfile,
    stats: &mut SynthesisStats,
) -> BoundResult {
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    let mut blocked: HashSet<Vec<u32>> = HashSet::new();
    while let Some(deleted) = stack.pop() {
        if !blocked.insert(deleted.clone()) {
            continue;
        }
        profile.blocked += 1;
        if let Some(g) = gov {
            if let Err(reason) = g.check_realtime() {
                return BoundResult::Aborted(reason);
            }
            if let Err(reason) = g.check_cegis_candidates(*candidates) {
                return BoundResult::Aborted(reason);
            }
        }
        if *candidates >= config.max_candidates {
            return BoundResult::CapHit;
        }
        *candidates += 1;

        let Some(cand) = prune(problem, cls, u, base, &deleted) else {
            continue; // structurally dead; the blocking store remembers
        };
        if verify_semantic_ok(problem, &cand.model) {
            match accept(problem, cand.model, gov, stats) {
                AcceptOutcome::Solved(solved) => return BoundResult::Solved(solved),
                AcceptOutcome::Rejected => {
                    profile.oracle_rejections += 1;
                    continue;
                }
                AcceptOutcome::Aborted(r) => return BoundResult::Aborted(r),
            }
        }
        profile.oracle_rejections += 1;
        let children = propose_children(problem, cls, u, base, &cand, &deleted, config);
        for child in children.into_iter().rev() {
            if !blocked.contains(&child) {
                stack.push(child);
            }
        }
    }
    BoundResult::Exhausted
}

enum AcceptOutcome {
    Solved(Box<Synthesized>),
    Rejected,
    Aborted(AbortReason),
}

/// Runs the full acceptance pipeline on a checker-approved candidate:
/// shared-variable introduction, extraction, and the explore/re-verify
/// refinement loop of the tableau pipeline — the same oracle, the same
/// guarantees.
fn accept(
    problem: &mut SynthesisProblem,
    mut model: FtKripke,
    gov: Option<&Governor>,
    stats: &mut SynthesisStats,
) -> AcceptOutcome {
    let t_ext = Instant::now();
    let intro = introduce_shared_variables(&mut model);
    let mut program = extract_program(&model, &problem.props, problem.arena.num_procs(), &intro);
    let mut extract_profile = ExtractProfile {
        model_states: model.len(),
        shared_vars: intro.vars.len(),
        ..ExtractProfile::default()
    };
    let refine_cap = gov
        .and_then(|g| g.budget().max_extract_refine_rounds)
        .unwrap_or(DEFAULT_EXTRACT_REFINE_ROUNDS);
    let verified = loop {
        if let Some(g) = gov {
            if let Err(reason) = g.check_realtime() {
                stats.extract_time += t_ext.elapsed();
                stats.extract_profile = extract_profile;
                return AcceptOutcome::Aborted(reason);
            }
        }
        let Ok(ex) = explore(&program, &problem.faults, &problem.props) else {
            break false;
        };
        extract_profile.explored_states = ex.kripke.len();
        if verify_semantic_ok(problem, &ex.kripke) {
            break true;
        }
        if extract_profile.refinement_rounds >= refine_cap {
            break false;
        }
        let changed = refine_guards(problem, &model, &intro, &mut program);
        extract_profile.refinement_rounds += 1;
        extract_profile.refined_arcs += changed;
        if changed == 0 {
            break false;
        }
    };
    stats.extract_time += t_ext.elapsed();
    if !verified {
        return AcceptOutcome::Rejected;
    }
    extract_profile.verified = true;
    stats.extract_profile = extract_profile;
    let t_ver = Instant::now();
    let verification = verify_semantic(problem, &model);
    stats.verify_time += t_ver.elapsed();
    debug_assert!(verification.ok());
    stats.model_states = model.len();
    stats.fault_transitions = model.fault_edge_count();
    stats.program_transitions = model.edge_count() - stats.fault_transitions;
    AcceptOutcome::Solved(Box::new(Synthesized {
        model,
        program,
        artifacts: None,
        stats: SynthesisStats::default(), // replaced by the caller
        verification,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{barrier, mutex};
    use crate::synthesize;

    fn run(problem: &mut SynthesisProblem) -> SynthesisOutcome {
        cegis_synthesize(problem, ThreadPlan::uniform(1), None)
    }

    #[test]
    fn mutex2_fail_stop_solves() {
        let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
        match run(&mut problem) {
            SynthesisOutcome::Solved(s) => {
                assert!(s.verification.ok(), "{:?}", s.verification.failures);
                assert!(s.artifacts.is_none());
                assert!(s.stats.cegis_profile.solved_at_bound.is_some());
            }
            other => panic!("expected Solved, got {}", outcome_name(&other)),
        }
    }

    #[test]
    fn mutex2_fault_free_solves() {
        let mut problem = mutex::fault_free(2);
        match run(&mut problem) {
            SynthesisOutcome::Solved(s) => {
                assert!(s.verification.ok(), "{:?}", s.verification.failures);
            }
            other => panic!("expected Solved, got {}", outcome_name(&other)),
        }
    }

    #[test]
    fn barrier_impossible_agrees() {
        let mut problem = barrier::with_fail_stop_impossible(2);
        let cegis = run(&mut problem);
        assert!(
            matches!(cegis, SynthesisOutcome::Impossible(_)),
            "cegis: {}",
            outcome_name(&cegis)
        );
        let mut problem = barrier::with_fail_stop_impossible(2);
        let tableau = synthesize(&mut problem);
        assert!(matches!(tableau, SynthesisOutcome::Impossible(_)));
    }

    fn outcome_name(o: &SynthesisOutcome) -> String {
        match o {
            SynthesisOutcome::Solved(_) => "Solved".into(),
            SynthesisOutcome::Impossible(_) => "Impossible".into(),
            SynthesisOutcome::Aborted(a) => format!("Aborted({})", a.reason),
        }
    }
}

