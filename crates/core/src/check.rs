//! Model checking a *given* program against a fault-tolerance
//! specification.
//!
//! Section 2 of the paper: "One of the contributions of this paper is
//! the definition of a formal model of faults within the model-theoretic
//! setting, which enables mechanical reasoning about programs,
//! specifically, synthesis of a program from a specification (our topic
//! in this paper) and **model-checking a program against a
//! specification** (a topic we leave to another occasion, but certainly
//! one that our framework can address)." This module addresses it: a
//! hand-written (or externally synthesized) guarded-command program is
//! executed by the interpreter under the fault actions, and the
//! resulting fault-tolerant structure is checked against the
//! requirements of Section 3 — exactly the conditions the synthesizer
//! guarantees by construction.

use crate::problem::SynthesisProblem;
use crate::verify::{verify_semantic, Verification};
use ftsyn_guarded::interp::{explore, ExploreError};
use ftsyn_guarded::Program;
use ftsyn_kripke::FtKripke;
use std::fmt;

/// The result of checking a program: the generated structure plus the
/// verification verdicts.
#[derive(Debug)]
pub struct CheckReport {
    /// The global-state structure the program generates (with fault
    /// transitions).
    pub model: FtKripke,
    /// Verdicts: spec at the initial state under the problem's
    /// satisfaction relation, tolerance labels at perturbed states,
    /// fault closure.
    pub verification: Verification,
}

impl CheckReport {
    /// Whether the program is `TOL`-tolerant for the specification
    /// (all three requirements of Section 3 hold).
    pub fn tolerant(&self) -> bool {
        self.verification.ok()
    }
}

/// Errors while checking a program.
#[derive(Debug)]
pub enum CheckError {
    /// The interpreter could not execute the program (e.g. a fault
    /// produced a valuation matching no local state — the program does
    /// not even represent the fault class).
    Exploration(ExploreError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Exploration(e) => write!(f, "cannot execute the program: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Model-checks `program` against `problem`'s specification, fault
/// actions and tolerance requirement.
///
/// The program's propositions must be those of `problem.props` (the
/// usual setup: build the problem, then write — or synthesize — the
/// program over the same table).
///
/// # Errors
///
/// Returns [`CheckError::Exploration`] when the program cannot even be
/// executed under the fault actions.
pub fn check_program(
    problem: &mut SynthesisProblem,
    program: &Program,
) -> Result<CheckReport, CheckError> {
    let ex = explore(program, &problem.faults, &problem.props)
        .map_err(CheckError::Exploration)?;
    let verification = verify_semantic(problem, &ex.kripke);
    Ok(CheckReport {
        model: ex.kripke,
        verification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::mutex;
    use crate::synthesize;
    use crate::Tolerance;
    use ftsyn_guarded::{BoolExpr, LocalState, ProcArc, Process};
    use ftsyn_kripke::PropSet;

    #[test]
    fn synthesized_program_checks_out() {
        let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
        let s = synthesize(&mut problem).unwrap_solved();
        let report = check_program(&mut problem, &s.program).expect("executable");
        assert!(report.tolerant(), "{:?}", report.verification.failures);
    }

    /// A hand-written "mutex" that ignores the other process entirely:
    /// the checker must reject it (mutual exclusion is violated).
    #[test]
    fn broken_hand_written_program_is_rejected() {
        let mut problem = mutex::fault_free(2);
        let n = problem.props.len();
        let mk_proc = |i: usize, names: [&str; 3], props: &ftsyn_ctl::PropTable| {
            let ids: Vec<_> = names
                .iter()
                .map(|nm| props.id(nm).unwrap())
                .collect();
            Process {
                index: i,
                states: ids
                    .iter()
                    .zip(names.iter())
                    .map(|(&p, nm)| LocalState {
                        name: (*nm).to_owned(),
                        props: PropSet::from_iter_with_capacity(n, [p]),
                    })
                    .collect(),
                arcs: (0..3)
                    .map(|k| ProcArc {
                        from: k,
                        to: (k + 1) % 3,
                        guard: BoolExpr::Const(true), // no coordination!
                        assigns: vec![],
                    })
                    .collect(),
            }
        };
        let p1 = mk_proc(0, ["N1", "T1", "C1"], &problem.props);
        let p2 = mk_proc(1, ["N2", "T2", "C2"], &problem.props);
        let program = Program {
            processes: vec![p1, p2],
            shared: vec![],
            init_locals: vec![0, 0],
            init_shared: vec![],
            num_props: n,
        };
        let report = check_program(&mut problem, &program).expect("executable");
        assert!(!report.tolerant(), "unguarded entry must violate mutex");
        assert!(report
            .verification
            .failures
            .iter()
            .any(|f| f.message.contains("~C1 | ~C2") || f.message.contains("violates")));
    }

    /// A fault-intolerant program (correct without faults) fails the
    /// check once fail-stop faults are in the problem: its local states
    /// cannot even represent the down state.
    #[test]
    fn fault_intolerant_program_cannot_represent_the_faults() {
        // Synthesize the fault-free program…
        let mut plain = mutex::fault_free(2);
        let s = synthesize(&mut plain).unwrap_solved();
        // …then check it against the fail-stop problem. The proposition
        // tables differ (D1/D2 exist only in the fail-stop problem), so
        // rebuild the program's valuations is not even possible — the
        // exploration fails to map the fault outcome.
        let mut failstop = mutex::with_fail_stop(2, Tolerance::Masking);
        let err = check_program(&mut failstop, &s.program);
        assert!(
            matches!(err, Err(CheckError::Exploration(_))),
            "a program without down states cannot represent fail-stops"
        );
    }
}
