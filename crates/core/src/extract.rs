//! Program extraction (step 5 of the synthesis method).
//!
//! First, maximal sets of states with identical valuations are
//! disambiguated with fresh shared variables `x` (value `k` labels the
//! `k`-th member; every transition entering it is labeled `x := k`).
//! Then the model is projected onto each process index: a transition
//! `s →ᵢ t` contributes an arc of `Pᵢ` from `s↑i` to `t↑i` guarded by
//! `∧(L(s)↓i)` — the other processes' local states plus the shared
//! variable values. Arcs with equal endpoints and assignments are merged
//! by disjoining their guards (this is how Figure 9's `N2 ∨ C2` guards
//! arise).

use ftsyn_ctl::{Owner, PropTable};
use ftsyn_guarded::{BoolExpr, LocalState, ProcArc, Process, Program, SharedVar};
use ftsyn_kripke::{FtKripke, PropSet, StateId, TransKind};
use std::collections::HashMap;

/// Introduces the disambiguating shared variables into `model` (mutating
/// each state's `shared` vector) and returns their declarations plus,
/// for each state, its group memberships `(var, value)`.
pub fn introduce_shared_variables(model: &mut FtKripke) -> Vec<SharedVar> {
    // Group states by valuation, in state order.
    let mut groups: Vec<(PropSet, Vec<StateId>)> = Vec::new();
    let mut index: HashMap<PropSet, usize> = HashMap::new();
    for s in model.state_ids() {
        let v = model.state(s).props.clone();
        match index.get(&v) {
            Some(&g) => groups[g].1.push(s),
            None => {
                index.insert(v.clone(), groups.len());
                groups.push((v, vec![s]));
            }
        }
    }
    let shared: Vec<(usize, &Vec<StateId>)> = groups
        .iter()
        .enumerate()
        .filter(|(_, (_, members))| members.len() > 1)
        .map(|(g, (_, members))| (g, members))
        .collect();

    let mut vars = Vec::new();
    let mut assignments: Vec<(usize, Vec<StateId>)> = Vec::new();
    for &(_, members) in &shared {
        let vi = vars.len();
        vars.push(SharedVar {
            name: format!("x{vi}"),
            domain: members.len() as u32,
        });
        assignments.push((vi, members.clone()));
    }

    // Default every state's shared vector, then pin group members.
    let nvars = vars.len();
    for s in model.state_ids().collect::<Vec<_>>() {
        model.state_mut(s).shared = vec![1; nvars];
    }
    for (vi, members) in &assignments {
        for (k, &s) in members.iter().enumerate() {
            model.state_mut(s).shared[*vi] = (k + 1) as u32;
        }
    }
    vars
}

/// For each state, the disambiguation variable of its valuation group
/// (if its valuation is shared with another state).
fn group_vars(model: &FtKripke) -> Vec<Option<usize>> {
    let mut counts: HashMap<PropSet, usize> = HashMap::new();
    for s in model.state_ids() {
        *counts.entry(model.state(s).props.clone()).or_default() += 1;
    }
    // Variables were numbered by first occurrence of each duplicated
    // valuation in `introduce_shared_variables`; reproduce that order.
    let mut var_of: HashMap<PropSet, usize> = HashMap::new();
    let mut seen: HashMap<PropSet, ()> = HashMap::new();
    let mut next = 0usize;
    for s in model.state_ids() {
        let v = model.state(s).props.clone();
        if seen.insert(v.clone(), ()).is_none() && counts[&v] > 1 {
            var_of.insert(v, next);
            next += 1;
        }
    }
    model
        .state_ids()
        .map(|s| var_of.get(&model.state(s).props).copied())
        .collect()
}

/// One disjunct of a merged guard: the other processes' local states
/// plus shared-variable constraints observed in a source state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct GuardBlock {
    /// `(process, local-state index)` for every process except the mover.
    other_locals: Vec<(usize, usize)>,
    /// `(variable, value)` constraints.
    var_eqs: Vec<(usize, u32)>,
}

/// Extracts the concurrent program `P₁ ‖ … ‖ P_I` from the model.
///
/// `model` must already carry its disambiguating shared variables (call
/// [`introduce_shared_variables`] first). `num_procs` is the number of
/// processes `I`.
///
/// # Panics
///
/// Panics if the model has no initial state.
pub fn extract_program(
    model: &FtKripke,
    props: &PropTable,
    num_procs: usize,
    shared: Vec<SharedVar>,
) -> Program {
    let proc_masks: Vec<PropSet> = (0..num_procs)
        .map(|i| {
            PropSet::from_iter_with_capacity(
                props.len(),
                props.iter().filter(|&p| props.owner(p) == Owner::Process(i)),
            )
        })
        .collect();

    // Discover local states per process.
    let mut processes: Vec<Process> = (0..num_procs)
        .map(|i| Process {
            index: i,
            states: Vec::new(),
            arcs: Vec::new(),
        })
        .collect();
    let local_of = |proc: &mut Process, props_table: &PropTable, lv: PropSet| -> usize {
        if let Some(k) = proc.state_by_props(&lv) {
            return k;
        }
        let name = if lv.is_empty() {
            format!("idle{}", proc.index + 1)
        } else {
            lv.iter()
                .map(|p| props_table.name(p).to_owned())
                .collect::<Vec<_>>()
                .join("")
        };
        proc.states.push(LocalState { name, props: lv });
        proc.states.len() - 1
    };

    // Project every state up-front so local indices are stable.
    let mut state_locals: Vec<Vec<usize>> = Vec::new();
    for s in model.state_ids() {
        let mut locals = Vec::with_capacity(num_procs);
        for i in 0..num_procs {
            let lv = model.state(s).props.intersect(&proc_masks[i]);
            locals.push(local_of(&mut processes[i], props, lv));
        }
        state_locals.push(locals);
    }

    // Collect arcs: (proc, from, to, assigns) → guard blocks.
    let group_var = group_vars(model);
    type ArcKey = (usize, usize, usize, Vec<(usize, u32)>);
    let mut arcs: HashMap<ArcKey, Vec<GuardBlock>> = HashMap::new();
    let mut arc_order: Vec<ArcKey> = Vec::new();
    for s in model.state_ids() {
        for e in model.succ(s) {
            let TransKind::Proc(i) = e.kind else { continue };
            let from = state_locals[s.index()][i];
            let to = state_locals[e.to.index()][i];
            // Assignments: the full shared vector of the target state.
            // The paper only assigns the target's own group variable;
            // resetting the (don't-care, Section 5.3) remaining
            // variables to their canonical value 1 is
            // behavior-equivalent and keeps the runtime configuration
            // space canonical, so the interpreter regenerates the
            // model's fault-free portion exactly.
            let assigns: Vec<(usize, u32)> = model
                .state(e.to)
                .shared
                .iter()
                .enumerate()
                .map(|(vi, &k)| (vi, k))
                .collect();
            // Guard block from the source state.
            let other_locals: Vec<(usize, usize)> = state_locals[s.index()]
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, &l)| (j, l))
                .collect();
            let mut var_eqs = Vec::new();
            if let Some(vi) = group_var[s.index()] {
                var_eqs.push((vi, model.state(s).shared[vi]));
            }
            let key = (i, from, to, assigns);
            let block = GuardBlock {
                other_locals,
                var_eqs,
            };
            let entry = arcs.entry(key.clone()).or_insert_with(|| {
                arc_order.push(key);
                Vec::new()
            });
            if !entry.contains(&block) {
                entry.push(block);
            }
        }
    }

    // Render guards and attach arcs.
    for key in arc_order {
        let blocks = arcs.remove(&key).expect("keyed above");
        let (i, from, to, assigns) = key;
        let guard = blocks_to_guard(&processes, &blocks);
        processes[i].arcs.push(ProcArc {
            from,
            to,
            guard,
            assigns,
        });
    }

    let init = model.init_states()[0];
    let init_locals = state_locals[init.index()].clone();
    let init_shared = model.state(init).shared.clone();

    Program {
        processes,
        shared,
        init_locals,
        init_shared,
        num_props: props.len(),
    }
}

/// Converts a local state into the positive-proposition guard expression
/// identifying it (one-hot local states are identified by their positive
/// propositions under the global specification's exactly-one clauses).
fn local_expr(proc: &Process, li: usize) -> BoolExpr {
    let ps: Vec<BoolExpr> = proc.states[li].props.iter().map(BoolExpr::Prop).collect();
    match ps.len() {
        0 => BoolExpr::Const(true),
        1 => ps.into_iter().next().expect("len checked"),
        _ => BoolExpr::And(ps),
    }
}

/// Renders a disjunction of guard blocks, factoring the common case where
/// all blocks share their shared-variable constraints and vary in a
/// single process dimension (yielding Figure 9-style `N2 ∨ C2` guards).
fn blocks_to_guard(processes: &[Process], blocks: &[GuardBlock]) -> BoolExpr {
    if blocks.is_empty() {
        return BoolExpr::Const(false);
    }
    // Try single-dimension factoring.
    if blocks.len() > 1 {
        let first = &blocks[0];
        let same_vars = blocks.iter().all(|b| b.var_eqs == first.var_eqs);
        if same_vars {
            // Find the set of process dimensions that vary.
            let mut varying: Vec<usize> = Vec::new();
            for (pos, &(j, l0)) in first.other_locals.iter().enumerate() {
                if blocks.iter().any(|b| b.other_locals[pos] != (j, l0)) {
                    varying.push(pos);
                }
            }
            if varying.len() == 1 {
                let pos = varying[0];
                let j = first.other_locals[pos].0;
                let mut states: Vec<usize> = blocks
                    .iter()
                    .map(|b| b.other_locals[pos].1)
                    .collect();
                states.sort_unstable();
                states.dedup();
                let mut conj: Vec<BoolExpr> = Vec::new();
                // Fixed dimensions.
                for (p2, &(j2, l2)) in first.other_locals.iter().enumerate() {
                    if p2 != pos {
                        conj.push(local_expr(&processes[j2], l2));
                    }
                }
                // The varying one: disjunction over its observed states
                // (or `true` if every local state of P_j is covered).
                if states.len() < processes[j].states.len() {
                    let alts: Vec<BoolExpr> = states
                        .iter()
                        .map(|&l| local_expr(&processes[j], l))
                        .collect();
                    conj.push(if alts.len() == 1 {
                        alts.into_iter().next().expect("len checked")
                    } else {
                        BoolExpr::Or(alts)
                    });
                }
                for &(v, k) in &first.var_eqs {
                    conj.push(BoolExpr::VarEq(v, k));
                }
                return match conj.len() {
                    0 => BoolExpr::Const(true),
                    1 => conj.into_iter().next().expect("len checked"),
                    _ => BoolExpr::And(conj),
                };
            }
        }
    }
    // General case: disjunction of per-block conjunctions.
    let alts: Vec<BoolExpr> = blocks
        .iter()
        .map(|b| {
            let mut conj: Vec<BoolExpr> = b
                .other_locals
                .iter()
                .map(|&(j, l)| local_expr(&processes[j], l))
                .collect();
            for &(v, k) in &b.var_eqs {
                conj.push(BoolExpr::VarEq(v, k));
            }
            match conj.len() {
                0 => BoolExpr::Const(true),
                1 => conj.into_iter().next().expect("len checked"),
                _ => BoolExpr::And(conj),
            }
        })
        .collect();
    match alts.len() {
        1 => alts.into_iter().next().expect("len checked"),
        _ => BoolExpr::Or(alts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_kripke::State;

    fn two_proc_props() -> PropTable {
        let mut t = PropTable::new();
        for (n, i) in [("a1", 0), ("b1", 0), ("a2", 1), ("b2", 1)] {
            t.add(n, Owner::Process(i)).unwrap();
        }
        t
    }

    fn st(props: &PropTable, names: &[&str]) -> State {
        State::new(PropSet::from_iter_with_capacity(
            props.len(),
            names.iter().map(|n| props.id(n).unwrap()),
        ))
    }

    #[test]
    fn shared_vars_disambiguate_duplicate_valuations() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        let s2 = m.push_state(st(&props, &["b1", "a2"])); // duplicate valuation
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(1), s2);
        m.add_edge(s2, TransKind::Proc(0), s0);
        let vars = introduce_shared_variables(&mut m);
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].domain, 2);
        assert_eq!(m.state(s1).shared, vec![1]);
        assert_eq!(m.state(s2).shared, vec![2]);
        assert_eq!(m.state(s0).shared, vec![1]);
    }

    #[test]
    fn no_duplicates_no_shared_vars() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s0);
        let vars = introduce_shared_variables(&mut m);
        assert!(vars.is_empty());
    }

    #[test]
    fn extraction_produces_arcs_with_guards() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        let s2 = m.push_state(st(&props, &["a1", "b2"]));
        let s3 = m.push_state(st(&props, &["b1", "b2"]));
        m.add_init(s0);
        // P1 toggles a1/b1 in any P2 state; P2 toggles only when b1.
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s0);
        m.add_edge(s2, TransKind::Proc(0), s3);
        m.add_edge(s3, TransKind::Proc(0), s2);
        m.add_edge(s1, TransKind::Proc(1), s3);
        m.add_edge(s3, TransKind::Proc(1), s1);
        let vars = introduce_shared_variables(&mut m);
        let prog = extract_program(&m, &props, 2, vars);
        assert_eq!(prog.processes[0].states.len(), 2);
        assert_eq!(prog.processes[1].states.len(), 2);
        // P1's a1→b1 arc merged across P2 states: guard a2 ∨ b2 → covers
        // all of P2's local states, so it factors to `true`.
        let a1b1 = prog.processes[0]
            .arcs
            .iter()
            .find(|a| {
                prog.processes[0].states[a.from].name == "a1"
                    && prog.processes[0].states[a.to].name == "b1"
            })
            .expect("arc a1→b1 exists");
        assert_eq!(a1b1.guard, BoolExpr::Const(true));
        // P2's a2→b2 arc guarded on b1.
        let a2b2 = prog.processes[1]
            .arcs
            .iter()
            .find(|a| {
                prog.processes[1].states[a.from].name == "a2"
                    && prog.processes[1].states[a.to].name == "b2"
            })
            .expect("arc a2→b2 exists");
        let b1 = props.id("b1").unwrap();
        assert_eq!(a2b2.guard, BoolExpr::Prop(b1));
        assert_eq!(prog.init_locals, vec![0, 0]);
    }

    #[test]
    fn guard_includes_shared_variable_tests() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let dup1 = m.push_state(st(&props, &["b1", "a2"]));
        let dup2 = m.push_state(st(&props, &["b1", "a2"]));
        let s3 = m.push_state(st(&props, &["b1", "b2"]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), dup1);
        // Only the x=2 copy allows P2 to move.
        m.add_edge(dup1, TransKind::Proc(0), dup2);
        m.add_edge(dup2, TransKind::Proc(1), s3);
        m.add_edge(s3, TransKind::Proc(0), s0);
        let vars = introduce_shared_variables(&mut m);
        assert_eq!(vars.len(), 1);
        let prog = extract_program(&m, &props, 2, vars);
        let arc = prog.processes[1]
            .arcs
            .iter()
            .find(|a| prog.processes[1].states[a.to].name == "b2")
            .expect("P2 arc exists");
        // Guard must mention x0=2.
        fn mentions_var(e: &BoolExpr) -> bool {
            match e {
                BoolExpr::VarEq(_, 2) => true,
                BoolExpr::And(v) | BoolExpr::Or(v) => v.iter().any(mentions_var),
                BoolExpr::Not(i) => mentions_var(i),
                _ => false,
            }
        }
        assert!(mentions_var(&arc.guard), "guard: {arc:?}");
        // The P1 arc entering the x=2 copy carries the assignment x := 2.
        let entering = prog.processes[0]
            .arcs
            .iter()
            .find(|a| a.assigns.contains(&(0, 2)))
            .expect("an arc assigns x := 2");
        assert_eq!(prog.processes[0].states[entering.to].name, "b1");
    }
}
