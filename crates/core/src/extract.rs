//! Program extraction (step 5 of the synthesis method).
//!
//! First, maximal sets of states with identical valuations are
//! disambiguated with fresh shared variables `x` (value `k` labels the
//! `k`-th member; every transition entering it is labeled `x := k`).
//! Then the model is projected onto each process index: a transition
//! `s →ᵢ t` contributes an arc of `Pᵢ` from `s↑i` to `t↑i` guarded by
//! `∧(L(s)↓i)` — the other processes' local states plus the shared
//! variable values. Arcs with equal endpoints and assignments are merged
//! by disjoining their guards (this is how Figure 9's `N2 ∨ C2` guards
//! arise).

use crate::problem::{SynthesisProblem, Tolerance};
use crate::verify::semantics_of;
use ftsyn_ctl::{FormulaId, Owner, PropTable};
use ftsyn_guarded::interp::corrupt_branches;
use ftsyn_guarded::{BoolExpr, LocalState, ProcArc, Process, Program, SharedVar};
use ftsyn_kripke::{Checker, FtKripke, PropSet, StateId, TransKind};
use std::collections::{HashMap, HashSet, VecDeque};

/// Default cap on guard-refinement rounds in the in-pipeline
/// extraction-verification stage, used when the governor's budget does
/// not set `max_extract_refine_rounds`.
pub const DEFAULT_EXTRACT_REFINE_ROUNDS: usize = 4;

/// The disambiguating shared variables of a model, together with the
/// valuation-group variable of each state. Returned by
/// [`introduce_shared_variables`] so extraction and refinement can never
/// re-derive (and drift from) the valuation→variable numbering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedIntroduction {
    /// The shared-variable declarations, in introduction order.
    pub vars: Vec<SharedVar>,
    /// For each state (by index), the variable disambiguating its
    /// valuation group — `None` when its valuation is unique.
    pub group_var: Vec<Option<usize>>,
}

/// Counters for the extraction + in-pipeline verification stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractProfile {
    /// States in the synthesized model the program was read off from.
    pub model_states: usize,
    /// Disambiguating shared variables introduced.
    pub shared_vars: usize,
    /// Global states reached by interpreting the extracted program under
    /// faults (last verification round).
    pub explored_states: usize,
    /// Explored states outside the model: fault-displaced configurations
    /// carrying a stale shared vector (faults preserve the running
    /// shared values while the model's fault edge re-pins them).
    pub off_model_states: usize,
    /// Arcs whose guards were strengthened by counterexample refinement.
    pub refined_arcs: usize,
    /// Refinement rounds performed.
    pub refinement_rounds: usize,
    /// Whether the extracted program's explored structure passed
    /// semantic verification.
    pub verified: bool,
}

/// Introduces the disambiguating shared variables into `model` (mutating
/// each state's `shared` vector) and returns their declarations plus,
/// for each state, its group variable.
pub fn introduce_shared_variables(model: &mut FtKripke) -> SharedIntroduction {
    // Group states by valuation, in state order.
    let mut groups: Vec<(PropSet, Vec<StateId>)> = Vec::new();
    let mut index: HashMap<PropSet, usize> = HashMap::new();
    for s in model.state_ids() {
        let v = model.state(s).props.clone();
        match index.get(&v) {
            Some(&g) => groups[g].1.push(s),
            None => {
                index.insert(v.clone(), groups.len());
                groups.push((v, vec![s]));
            }
        }
    }
    let shared: Vec<(usize, &Vec<StateId>)> = groups
        .iter()
        .enumerate()
        .filter(|(_, (_, members))| members.len() > 1)
        .map(|(g, (_, members))| (g, members))
        .collect();

    let mut vars = Vec::new();
    let mut assignments: Vec<(usize, Vec<StateId>)> = Vec::new();
    for &(_, members) in &shared {
        let vi = vars.len();
        vars.push(SharedVar {
            name: format!("x{vi}"),
            domain: members.len() as u32,
        });
        assignments.push((vi, members.clone()));
    }

    // Default every state's shared vector, then pin group members.
    let nvars = vars.len();
    let mut group_var: Vec<Option<usize>> = vec![None; model.len()];
    for s in model.state_ids().collect::<Vec<_>>() {
        model.state_mut(s).shared = vec![1; nvars];
    }
    for (vi, members) in &assignments {
        for (k, &s) in members.iter().enumerate() {
            model.state_mut(s).shared[*vi] = (k + 1) as u32;
            group_var[s.index()] = Some(*vi);
        }
    }
    SharedIntroduction { vars, group_var }
}

/// One disjunct of a merged guard: the other processes' local states
/// plus shared-variable constraints observed in a source state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct GuardBlock {
    /// `(process, local-state index)` for every process except the mover.
    other_locals: Vec<(usize, usize)>,
    /// `(variable, value)` constraints.
    var_eqs: Vec<(usize, u32)>,
}

/// Extracts the concurrent program `P₁ ‖ … ‖ P_I` from the model.
///
/// `model` must already carry its disambiguating shared variables (call
/// [`introduce_shared_variables`] first). `num_procs` is the number of
/// processes `I`.
///
/// # Panics
///
/// Panics if the model has no initial state.
pub fn extract_program(
    model: &FtKripke,
    props: &PropTable,
    num_procs: usize,
    shared: &SharedIntroduction,
) -> Program {
    let proc_masks = proc_prop_masks(props, num_procs);

    // Discover local states per process.
    let mut processes: Vec<Process> = (0..num_procs)
        .map(|i| Process {
            index: i,
            states: Vec::new(),
            arcs: Vec::new(),
        })
        .collect();
    let local_of = |proc: &mut Process, props_table: &PropTable, lv: PropSet| -> usize {
        if let Some(k) = proc.state_by_props(&lv) {
            return k;
        }
        let name = if lv.is_empty() {
            format!("idle{}", proc.index + 1)
        } else {
            lv.iter()
                .map(|p| props_table.name(p).to_owned())
                .collect::<Vec<_>>()
                .join("")
        };
        proc.states.push(LocalState { name, props: lv });
        proc.states.len() - 1
    };

    // Project every state up-front so local indices are stable.
    let mut state_locals: Vec<Vec<usize>> = Vec::new();
    for s in model.state_ids() {
        let mut locals = Vec::with_capacity(num_procs);
        for i in 0..num_procs {
            let lv = model.state(s).props.intersect(&proc_masks[i]);
            locals.push(local_of(&mut processes[i], props, lv));
        }
        state_locals.push(locals);
    }

    // Collect arcs: (proc, from, to, assigns) → guard blocks.
    let group_var = &shared.group_var;
    type ArcKey = (usize, usize, usize, Vec<(usize, u32)>);
    let mut arcs: HashMap<ArcKey, Vec<GuardBlock>> = HashMap::new();
    let mut arc_order: Vec<ArcKey> = Vec::new();
    for s in model.state_ids() {
        for e in model.succ(s) {
            let TransKind::Proc(i) = e.kind else { continue };
            let from = state_locals[s.index()][i];
            let to = state_locals[e.to.index()][i];
            // Assignments: the full shared vector of the target state.
            // The paper only assigns the target's own group variable;
            // resetting the (don't-care, Section 5.3) remaining
            // variables to their canonical value 1 is
            // behavior-equivalent and keeps the runtime configuration
            // space canonical, so the interpreter regenerates the
            // model's fault-free portion exactly.
            let assigns: Vec<(usize, u32)> = model
                .state(e.to)
                .shared
                .iter()
                .enumerate()
                .map(|(vi, &k)| (vi, k))
                .collect();
            // Guard block from the source state.
            let other_locals: Vec<(usize, usize)> = state_locals[s.index()]
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, &l)| (j, l))
                .collect();
            let mut var_eqs = Vec::new();
            if let Some(vi) = group_var[s.index()] {
                var_eqs.push((vi, model.state(s).shared[vi]));
            }
            let key = (i, from, to, assigns);
            let block = GuardBlock {
                other_locals,
                var_eqs,
            };
            let entry = arcs.entry(key.clone()).or_insert_with(|| {
                arc_order.push(key);
                Vec::new()
            });
            if !entry.contains(&block) {
                entry.push(block);
            }
        }
    }

    // Render guards and attach arcs.
    for key in arc_order {
        let blocks = arcs.remove(&key).expect("keyed above");
        let (i, from, to, assigns) = key;
        let guard = blocks_to_guard(&processes, &blocks);
        processes[i].arcs.push(ProcArc {
            from,
            to,
            guard,
            assigns,
        });
    }

    let init = model.init_states()[0];
    let init_locals = state_locals[init.index()].clone();
    let init_shared = model.state(init).shared.clone();

    Program {
        processes,
        shared: shared.vars.clone(),
        init_locals,
        init_shared,
        num_props: props.len(),
    }
}

/// Per-process proposition masks (the partition of the vocabulary).
fn proc_prop_masks(props: &PropTable, num_procs: usize) -> Vec<PropSet> {
    (0..num_procs)
        .map(|i| {
            PropSet::from_iter_with_capacity(
                props.len(),
                props.iter().filter(|&p| props.owner(p) == Owner::Process(i)),
            )
        })
        .collect()
}

/// Strengthens the guards of arcs whose valuation groups contain
/// mis-owned runtime configurations, and returns how many guards
/// changed.
///
/// Program arcs assign the full canonical shared vector of their target,
/// but runtime faults preserve the running shared values while changing
/// locals — so a model fault edge `t →F u` with `shared(t) ≠ shared(u)`
/// displaces the run to the off-model configuration `(locals(u),
/// shared(t))`, and a repair fault can land its tolerance obligation on
/// the *canonical* configuration of a different valuation-group member
/// than the model's fault-edge target. The weak guards extracted from
/// canonical states fire the group-variable-matching member there, which
/// may violate a stricter tolerance label.
///
/// The refinement computes the configuration-level displacement fixpoint
/// — every `(locals, carried shared vector)` pair reachable when faults
/// carry the running shared values along model fault edges — together
/// with each configuration's *obligations*: the tolerance labels of the
/// fault actions that can reach it. Every configuration is then owned by
/// exactly one state of its valuation group: the *weak* owner (the
/// member whose guards already fire at this vector) when its model
/// truths satisfy all obligation labels, otherwise the first group
/// member, in state order, that does (decided with the CTL model checker
/// on the model itself). Ownership matters because firing the *union* of
/// several members' arcs at a shared configuration splices their
/// behaviours into composite paths that no model state has — which is
/// exactly what breaks `AF`-liveness inside the tolerance labels. An
/// owned configuration fires the owner's arcs only, and since every arc
/// writes the full canonical target vector, its program-path behaviour
/// is exactly the owner's, so it inherits the owner's tolerance truths
/// under the fault-free satisfaction relation.
///
/// Guards of arcs in re-owned groups are rebuilt as one block per
/// `(source state, owned vector)`, with shared-variable equalities
/// greedily minimized against the vectors owned by same-locals rivals
/// (canonical blocks typically minimize back to the readable
/// single-variable test the weak extraction produced). Groups in which
/// every configuration stays with its weak owner keep their original
/// guards, which is what keeps fault-free programs byte-identical.
pub fn refine_guards(
    problem: &mut SynthesisProblem,
    model: &FtKripke,
    intro: &SharedIntroduction,
    program: &mut Program,
) -> usize {
    let num_procs = program.processes.len();
    let masks = proc_prop_masks(&problem.props, num_procs);
    let n = model.len();

    // Locals of every model state, in the program's local indexing.
    let state_locals: Vec<Vec<usize>> = model
        .state_ids()
        .map(|s| {
            (0..num_procs)
                .map(|i| {
                    let lv = model.state(s).props.intersect(&masks[i]);
                    program.processes[i]
                        .state_by_props(&lv)
                        .expect("model state projects onto extracted local states")
                })
                .collect()
        })
        .collect();

    let canonical: Vec<&[u32]> = model
        .state_ids()
        .map(|s| model.state(s).shared.as_slice())
        .collect();
    let mut fault_succ: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut proc_edges: Vec<(usize, usize, usize)> = Vec::new();
    for s in model.state_ids() {
        for e in model.succ(s) {
            match e.kind {
                TransKind::Fault(a) => fault_succ[s.index()].push((a, e.to.index())),
                TransKind::Proc(i) => proc_edges.push((s.index(), i, e.to.index())),
            }
        }
    }

    // Same-locals groups (same locals ⟺ same valuation ⟺ one
    // disambiguation group), in state order.
    let mut by_locals: HashMap<&[usize], Vec<usize>> = HashMap::new();
    for (u, l) in state_locals.iter().enumerate() {
        by_locals.entry(l.as_slice()).or_default().push(u);
    }

    // Configuration-level displacement fixpoint: every (locals, carried
    // shared vector) pair reachable when fault edges preserve the
    // carried values (modulo the action's own corruption branches), each
    // with its accumulated obligations — the tolerance labels of the
    // fault actions that can reach it. Seeding in state order and BFS
    // keep the entry list, and hence every guard built from it,
    // deterministic.
    struct Entry {
        locals: Vec<usize>,
        vector: Vec<u32>,
        obligations: Vec<Tolerance>,
    }
    let mut entry_index: HashMap<(Vec<usize>, Vec<u32>), usize> = HashMap::new();
    let mut entries: Vec<Entry> = Vec::new();
    let mut work: VecDeque<usize> = VecDeque::new();
    for u in 0..n {
        let key = (state_locals[u].clone(), canonical[u].to_vec());
        if !entry_index.contains_key(&key) {
            entry_index.insert(key.clone(), entries.len());
            work.push_back(entries.len());
            entries.push(Entry {
                locals: key.0,
                vector: key.1,
                obligations: Vec::new(),
            });
        }
    }
    while let Some(ei) = work.pop_front() {
        let locals = entries[ei].locals.clone();
        let v = entries[ei].vector.clone();
        let group = by_locals[locals.as_slice()].clone();
        for u in group {
            for &(a, w) in &fault_succ[u] {
                let tol = problem.tolerance.of(a);
                for v2 in corrupt_branches(program, &v, &problem.faults[a]) {
                    let key = (state_locals[w].clone(), v2);
                    let idx = match entry_index.get(&key) {
                        Some(&i) => i,
                        None => {
                            let i = entries.len();
                            entry_index.insert(key.clone(), i);
                            work.push_back(i);
                            entries.push(Entry {
                                locals: key.0,
                                vector: key.1,
                                obligations: Vec::new(),
                            });
                            i
                        }
                    };
                    if !entries[idx].obligations.contains(&tol) {
                        entries[idx].obligations.push(tol);
                    }
                }
            }
        }
    }

    // Which model states satisfy which tolerance labels, decided by the
    // CTL checker on the model itself.
    let mut needed: Vec<Tolerance> = Vec::new();
    for e in &entries {
        for &t in &e.obligations {
            if !needed.contains(&t) {
                needed.push(t);
            }
        }
    }
    let tol_formulas: Vec<Vec<FormulaId>> = needed
        .iter()
        .map(|&t| problem.label_tol_formulas(t))
        .collect();
    let state_ids: Vec<StateId> = model.state_ids().collect();
    let mut ck = Checker::new(model, semantics_of(problem.mode));
    let mut sat: Vec<Vec<bool>> = Vec::with_capacity(n);
    for &s in &state_ids {
        let mut row = Vec::with_capacity(needed.len());
        for fs in &tol_formulas {
            row.push(fs.iter().all(|&f| ck.holds(&problem.arena, f, s)));
        }
        sat.push(row);
    }

    // Assign every configuration exactly one owner, collecting each
    // state's owned vectors. The *weak* owner — the member the original
    // guards fire at this vector (the group-variable match; for a
    // canonical configuration that is its own state) — keeps ownership
    // whenever its model truths satisfy every obligation label; this is
    // what keeps untouched groups, and hence fault-free programs,
    // byte-identical. Otherwise ownership moves to the first group
    // member, in state order, that satisfies all obligations (decided
    // with the CTL model checker on the model itself) — canonical
    // configurations included: a runtime repair fault carries the
    // running shared vector, so it can land a *Masking* obligation on
    // the canonical configuration of a copy that only certifies
    // Nonmasking, while its all-satisfying sibling is the model's actual
    // repair target. When no member satisfies everything the weak owner
    // stays (the remaining verification failure then surfaces as an
    // extraction gap).
    let weak_owner = |e: &Entry, group: &[usize]| -> usize {
        match intro.group_var[group[0]] {
            Some(g) => group
                .iter()
                .copied()
                .find(|&u| canonical[u][g] == e.vector[g])
                .unwrap_or(group[0]),
            None => group[0],
        }
    };
    let mut accepted: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    let mut reowned_groups: HashSet<&[usize]> = HashSet::new();
    for e in &entries {
        let group = &by_locals[e.locals.as_slice()];
        let satisfies = |u: usize| {
            e.obligations
                .iter()
                .all(|t| sat[u][needed.iter().position(|x| x == t).expect("collected above")])
        };
        let weak = weak_owner(e, group);
        let owner = if satisfies(weak) {
            weak
        } else {
            group.iter().copied().find(|&u| satisfies(u)).unwrap_or(weak)
        };
        if owner != weak {
            reowned_groups.insert(e.locals.as_slice());
        }
        accepted[owner].push(e.vector.clone());
    }

    // The merged program arc of each model edge, keyed by
    // (process, from-local, to-local, shared assignment vector).
    type ArcKey = (usize, usize, usize, Vec<(usize, u32)>);
    let mut arc_index: HashMap<ArcKey, usize> = HashMap::new();
    for (pi, proc) in program.processes.iter().enumerate() {
        for (ai, arc) in proc.arcs.iter().enumerate() {
            arc_index.insert((pi, arc.from, arc.to, arc.assigns.clone()), ai);
        }
    }
    let mut arc_sources: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut state_arcs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for &(src, pi, dst) in &proc_edges {
        let assigns: Vec<(usize, u32)> = canonical[dst]
            .iter()
            .enumerate()
            .map(|(vi, &k)| (vi, k))
            .collect();
        let ai = arc_index[&(pi, state_locals[src][pi], state_locals[dst][pi], assigns)];
        let key = (pi, ai);
        let sources = arc_sources.entry(key).or_default();
        if !sources.contains(&src) {
            sources.push(src);
        }
        if !state_arcs[src].contains(&key) {
            state_arcs[src].push(key);
        }
    }

    // Implicate whole valuation groups in which some configuration was
    // re-owned: only there do the weak guards fire the wrong member.
    // (Displaced configurations whose weak owner satisfies all
    // obligations already behave correctly under the weak guards — no
    // rebuild, no churn.) Group-atomic implication is required for
    // consistency — a guard block only fires where the other processes'
    // locals match its source exactly, so only same-group arcs can fire
    // at a configuration, and mixing ownership-partitioned guards with
    // weak ones inside a group would re-introduce double firing.
    let mut implicated: Vec<(usize, usize)> = Vec::new();
    let mut implicated_set: HashSet<(usize, usize)> = HashSet::new();
    for u in 0..n {
        if !reowned_groups.contains(state_locals[u].as_slice()) {
            continue;
        }
        for &key in &state_arcs[u] {
            if implicated_set.insert(key) {
                implicated.push(key);
            }
        }
    }

    let mut new_guards: Vec<(usize, usize, BoolExpr)> = Vec::new();
    for &(pi, ai) in &implicated {
        let mut blocks: Vec<GuardBlock> = Vec::new();
        for &u in &arc_sources[&(pi, ai)] {
            // Rival vectors the blocks must exclude: everything owned by
            // a same-locals rival (ownership partitions the group's
            // vectors, so no rival equals an owned vector).
            let mut rival_vecs: Vec<Vec<u32>> = Vec::new();
            for &u2 in &by_locals[state_locals[u].as_slice()] {
                if u2 == u {
                    continue;
                }
                for v in &accepted[u2] {
                    if !rival_vecs.contains(v) {
                        rival_vecs.push(v.clone());
                    }
                }
            }
            let other_locals: Vec<(usize, usize)> = state_locals[u]
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != pi)
                .map(|(j, &l)| (j, l))
                .collect();
            for v in &accepted[u] {
                let block = GuardBlock {
                    other_locals: other_locals.clone(),
                    var_eqs: minimize_var_eqs(v, &rival_vecs, intro.group_var[u]),
                };
                if !blocks.contains(&block) {
                    blocks.push(block);
                }
            }
        }
        let guard = blocks_to_guard(&program.processes, &blocks);
        if program.processes[pi].arcs[ai].guard != guard {
            new_guards.push((pi, ai, guard));
        }
    }
    let changed = new_guards.len();
    for (pi, ai, g) in new_guards {
        program.processes[pi].arcs[ai].guard = g;
    }
    changed
}

/// The shortest prefix of shared-variable equalities (group variable
/// first, then ascending index) distinguishing `v` from every rival
/// vector; each kept equality excludes at least one remaining rival.
fn minimize_var_eqs(
    v: &[u32],
    rivals: &[Vec<u32>],
    group_var: Option<usize>,
) -> Vec<(usize, u32)> {
    let mut remaining: Vec<&Vec<u32>> = rivals.iter().collect();
    let mut eqs: Vec<(usize, u32)> = Vec::new();
    let order = group_var
        .into_iter()
        .chain((0..v.len()).filter(move |&i| Some(i) != group_var));
    for var in order {
        if remaining.is_empty() {
            break;
        }
        let before = remaining.len();
        remaining.retain(|c| c[var] == v[var]);
        if remaining.len() < before {
            eqs.push((var, v[var]));
        }
    }
    debug_assert!(remaining.is_empty(), "a rival vector equals the block's");
    eqs
}

/// Converts a local state into the guard expression identifying it: its
/// positive propositions, plus the negated propositions needed to
/// exclude every sibling local state whose propositions subsume this
/// one's (a purely positive conjunction would also fire there). One-hot
/// local states — the common case under the global specification's
/// exactly-one clauses — never subsume each other, so their expressions
/// stay purely positive.
fn local_expr(proc: &Process, li: usize) -> BoolExpr {
    let props = &proc.states[li].props;
    let mut conj: Vec<BoolExpr> = props.iter().map(BoolExpr::Prop).collect();
    let mut confusable: Vec<usize> = (0..proc.states.len())
        .filter(|&l| l != li && props.iter().all(|p| proc.states[l].props.contains(p)))
        .collect();
    while let Some(&l) = confusable.first() {
        let p = proc.states[l]
            .props
            .iter()
            .find(|&p| !props.contains(p))
            .expect("a distinct superset has an extra proposition");
        conj.push(BoolExpr::Not(Box::new(BoolExpr::Prop(p))));
        confusable.retain(|&l2| !proc.states[l2].props.contains(p));
    }
    match conj.len() {
        0 => BoolExpr::Const(true),
        1 => conj.into_iter().next().expect("len checked"),
        _ => BoolExpr::And(conj),
    }
}

/// Renders a disjunction of guard blocks, factoring the common case where
/// all blocks share their shared-variable constraints and vary in a
/// single process dimension (yielding Figure 9-style `N2 ∨ C2` guards).
fn blocks_to_guard(processes: &[Process], blocks: &[GuardBlock]) -> BoolExpr {
    if blocks.is_empty() {
        return BoolExpr::Const(false);
    }
    // Try single-dimension factoring.
    if blocks.len() > 1 {
        let first = &blocks[0];
        let same_vars = blocks.iter().all(|b| b.var_eqs == first.var_eqs);
        if same_vars {
            // Find the set of process dimensions that vary.
            let mut varying: Vec<usize> = Vec::new();
            for (pos, &(j, l0)) in first.other_locals.iter().enumerate() {
                if blocks.iter().any(|b| b.other_locals[pos] != (j, l0)) {
                    varying.push(pos);
                }
            }
            if varying.len() == 1 {
                let pos = varying[0];
                let j = first.other_locals[pos].0;
                let mut states: Vec<usize> = blocks
                    .iter()
                    .map(|b| b.other_locals[pos].1)
                    .collect();
                states.sort_unstable();
                states.dedup();
                let mut conj: Vec<BoolExpr> = Vec::new();
                // Fixed dimensions.
                for (p2, &(j2, l2)) in first.other_locals.iter().enumerate() {
                    if p2 != pos {
                        conj.push(local_expr(&processes[j2], l2));
                    }
                }
                // The varying one: disjunction over its observed states
                // (or `true` if every local state of P_j is covered).
                if states.len() < processes[j].states.len() {
                    let alts: Vec<BoolExpr> = states
                        .iter()
                        .map(|&l| local_expr(&processes[j], l))
                        .collect();
                    conj.push(if alts.len() == 1 {
                        alts.into_iter().next().expect("len checked")
                    } else {
                        BoolExpr::Or(alts)
                    });
                }
                for &(v, k) in &first.var_eqs {
                    conj.push(BoolExpr::VarEq(v, k));
                }
                return match conj.len() {
                    0 => BoolExpr::Const(true),
                    1 => conj.into_iter().next().expect("len checked"),
                    _ => BoolExpr::And(conj),
                };
            }
        }
    }
    // General case: disjunction of per-block conjunctions.
    let alts: Vec<BoolExpr> = blocks
        .iter()
        .map(|b| {
            let mut conj: Vec<BoolExpr> = b
                .other_locals
                .iter()
                .map(|&(j, l)| local_expr(&processes[j], l))
                .collect();
            for &(v, k) in &b.var_eqs {
                conj.push(BoolExpr::VarEq(v, k));
            }
            match conj.len() {
                0 => BoolExpr::Const(true),
                1 => conj.into_iter().next().expect("len checked"),
                _ => BoolExpr::And(conj),
            }
        })
        .collect();
    match alts.len() {
        1 => alts.into_iter().next().expect("len checked"),
        _ => BoolExpr::Or(alts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_kripke::State;

    fn two_proc_props() -> PropTable {
        let mut t = PropTable::new();
        for (n, i) in [("a1", 0), ("b1", 0), ("a2", 1), ("b2", 1)] {
            t.add(n, Owner::Process(i)).unwrap();
        }
        t
    }

    fn st(props: &PropTable, names: &[&str]) -> State {
        State::new(PropSet::from_iter_with_capacity(
            props.len(),
            names.iter().map(|n| props.id(n).unwrap()),
        ))
    }

    #[test]
    fn shared_vars_disambiguate_duplicate_valuations() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        let s2 = m.push_state(st(&props, &["b1", "a2"])); // duplicate valuation
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(1), s2);
        m.add_edge(s2, TransKind::Proc(0), s0);
        let intro = introduce_shared_variables(&mut m);
        assert_eq!(intro.vars.len(), 1);
        assert_eq!(intro.vars[0].domain, 2);
        assert_eq!(m.state(s1).shared, vec![1]);
        assert_eq!(m.state(s2).shared, vec![2]);
        assert_eq!(m.state(s0).shared, vec![1]);
        assert_eq!(intro.group_var, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn group_vars_follow_introduction_order_with_interleaved_duplicates() {
        // Two valuation groups whose members interleave in state order:
        // the group-variable numbering must come straight from
        // `introduce_shared_variables` (it used to be re-derived by a
        // separate scan that could drift).
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let a0 = m.push_state(st(&props, &["a1", "a2"]));
        let b0 = m.push_state(st(&props, &["b1", "a2"]));
        let a1 = m.push_state(st(&props, &["a1", "a2"])); // dup of a0
        let b1 = m.push_state(st(&props, &["b1", "a2"])); // dup of b0
        m.add_init(a0);
        m.add_edge(a0, TransKind::Proc(0), b0);
        m.add_edge(b0, TransKind::Proc(0), a1);
        m.add_edge(a1, TransKind::Proc(0), b1);
        m.add_edge(b1, TransKind::Proc(0), a0);
        let intro = introduce_shared_variables(&mut m);
        assert_eq!(intro.vars.len(), 2);
        assert_eq!(
            intro.group_var,
            vec![Some(0), Some(1), Some(0), Some(1)],
            "x0 belongs to the first-seen duplicated valuation, x1 to the second"
        );
        assert_eq!(m.state(a0).shared, vec![1, 1]);
        assert_eq!(m.state(b0).shared, vec![1, 1]);
        assert_eq!(m.state(a1).shared, vec![2, 1]);
        assert_eq!(m.state(b1).shared, vec![1, 2]);
        let prog = extract_program(&m, &props, 2, &intro);
        // Every guard block built from state s must test s's own group
        // variable at s's value: a1→b1 from a0 (x0=1) and a1 (x0=2),
        // b1→a1 from b0 (x1=1) and b1 (x1=2).
        for (from_name, var, vals) in [("a1", 0usize, [1u32, 2]), ("b1", 1, [1, 2])] {
            let arcs: Vec<_> = prog.processes[0]
                .arcs
                .iter()
                .filter(|a| prog.processes[0].states[a.from].name == from_name)
                .collect();
            assert!(!arcs.is_empty());
            for (arc, val) in arcs.iter().zip(vals) {
                fn eqs(e: &BoolExpr, out: &mut Vec<(usize, u32)>) {
                    match e {
                        BoolExpr::VarEq(v, k) => out.push((*v, *k)),
                        BoolExpr::And(v) | BoolExpr::Or(v) => v.iter().for_each(|e| eqs(e, out)),
                        BoolExpr::Not(i) => eqs(i, out),
                        _ => {}
                    }
                }
                let mut found = Vec::new();
                eqs(&arc.guard, &mut found);
                assert_eq!(found, vec![(var, val)], "arc {from_name} #{val}");
            }
        }
    }

    #[test]
    fn no_duplicates_no_shared_vars() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s0);
        let intro = introduce_shared_variables(&mut m);
        assert!(intro.vars.is_empty());
        assert_eq!(intro.group_var, vec![None, None]);
    }

    #[test]
    fn extraction_produces_arcs_with_guards() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let s1 = m.push_state(st(&props, &["b1", "a2"]));
        let s2 = m.push_state(st(&props, &["a1", "b2"]));
        let s3 = m.push_state(st(&props, &["b1", "b2"]));
        m.add_init(s0);
        // P1 toggles a1/b1 in any P2 state; P2 toggles only when b1.
        m.add_edge(s0, TransKind::Proc(0), s1);
        m.add_edge(s1, TransKind::Proc(0), s0);
        m.add_edge(s2, TransKind::Proc(0), s3);
        m.add_edge(s3, TransKind::Proc(0), s2);
        m.add_edge(s1, TransKind::Proc(1), s3);
        m.add_edge(s3, TransKind::Proc(1), s1);
        let intro = introduce_shared_variables(&mut m);
        let prog = extract_program(&m, &props, 2, &intro);
        assert_eq!(prog.processes[0].states.len(), 2);
        assert_eq!(prog.processes[1].states.len(), 2);
        // P1's a1→b1 arc merged across P2 states: guard a2 ∨ b2 → covers
        // all of P2's local states, so it factors to `true`.
        let a1b1 = prog.processes[0]
            .arcs
            .iter()
            .find(|a| {
                prog.processes[0].states[a.from].name == "a1"
                    && prog.processes[0].states[a.to].name == "b1"
            })
            .expect("arc a1→b1 exists");
        assert_eq!(a1b1.guard, BoolExpr::Const(true));
        // P2's a2→b2 arc guarded on b1.
        let a2b2 = prog.processes[1]
            .arcs
            .iter()
            .find(|a| {
                prog.processes[1].states[a.from].name == "a2"
                    && prog.processes[1].states[a.to].name == "b2"
            })
            .expect("arc a2→b2 exists");
        let b1 = props.id("b1").unwrap();
        assert_eq!(a2b2.guard, BoolExpr::Prop(b1));
        assert_eq!(prog.init_locals, vec![0, 0]);
    }

    #[test]
    fn guard_includes_shared_variable_tests() {
        let props = two_proc_props();
        let mut m = FtKripke::new();
        let s0 = m.push_state(st(&props, &["a1", "a2"]));
        let dup1 = m.push_state(st(&props, &["b1", "a2"]));
        let dup2 = m.push_state(st(&props, &["b1", "a2"]));
        let s3 = m.push_state(st(&props, &["b1", "b2"]));
        m.add_init(s0);
        m.add_edge(s0, TransKind::Proc(0), dup1);
        // Only the x=2 copy allows P2 to move.
        m.add_edge(dup1, TransKind::Proc(0), dup2);
        m.add_edge(dup2, TransKind::Proc(1), s3);
        m.add_edge(s3, TransKind::Proc(0), s0);
        let intro = introduce_shared_variables(&mut m);
        assert_eq!(intro.vars.len(), 1);
        let prog = extract_program(&m, &props, 2, &intro);
        let arc = prog.processes[1]
            .arcs
            .iter()
            .find(|a| prog.processes[1].states[a.to].name == "b2")
            .expect("P2 arc exists");
        // Guard must mention x0=2.
        fn mentions_var(e: &BoolExpr) -> bool {
            match e {
                BoolExpr::VarEq(_, 2) => true,
                BoolExpr::And(v) | BoolExpr::Or(v) => v.iter().any(mentions_var),
                BoolExpr::Not(i) => mentions_var(i),
                _ => false,
            }
        }
        assert!(mentions_var(&arc.guard), "guard: {arc:?}");
        // The P1 arc entering the x=2 copy carries the assignment x := 2.
        let entering = prog.processes[0]
            .arcs
            .iter()
            .find(|a| a.assigns.contains(&(0, 2)))
            .expect("an arc assigns x := 2");
        assert_eq!(prog.processes[0].states[entering.to].name, "b1");
    }
}
