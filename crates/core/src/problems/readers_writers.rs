//! A readers–writers problem: one writer and `R` readers. The writer's
//! access excludes everyone; readers may share the resource with each
//! other. Not one of the paper's worked examples — it exercises the
//! synthesis method on a specification whose exclusion relation is *not*
//! symmetric, and demonstrates fault-tolerant synthesis for a
//! writer-fail-stop fault class (readers keep reading while the writer
//! is down; the writer is repaired only when no reader is mid-read).
//!
//! Process 0 is the writer (regions `Nw`, `Tw`, `Cw`, down flag `Dw`);
//! processes `1..=R` are readers (`NrI`, `TrI`, `CrI`).

use crate::problem::{SynthesisProblem, Tolerance};
use ftsyn_ctl::{FormulaArena, FormulaId, Owner, PropId, PropTable, Spec};
use ftsyn_guarded::faults::{fail_stop, repair_to};
use ftsyn_guarded::BoolExpr;

/// Proposition handles for the readers–writers problem.
#[derive(Clone, Debug)]
pub struct RwProps {
    /// Writer regions `(N, T, C)`.
    pub writer: (PropId, PropId, PropId),
    /// Writer down flag (fail-stop variant only).
    pub writer_down: Option<PropId>,
    /// Per-reader regions `(N, T, C)`.
    pub readers: Vec<(PropId, PropId, PropId)>,
}

fn register(props: &mut PropTable, readers: usize, with_down: bool) -> RwProps {
    let n = props.add("Nw", Owner::Process(0)).expect("fresh");
    let t = props.add("Tw", Owner::Process(0)).expect("fresh");
    let c = props.add("Cw", Owner::Process(0)).expect("fresh");
    let writer_down = with_down.then(|| props.add_aux("Dw", Owner::Process(0)).expect("fresh"));
    let readers = (0..readers)
        .map(|i| {
            let pi = i + 1;
            (
                props.add(format!("Nr{pi}"), Owner::Process(pi)).expect("fresh"),
                props.add(format!("Tr{pi}"), Owner::Process(pi)).expect("fresh"),
                props.add(format!("Cr{pi}"), Owner::Process(pi)).expect("fresh"),
            )
        })
        .collect();
    RwProps {
        writer: (n, t, c),
        writer_down,
        readers,
    }
}

/// Builds the specification clauses shared by both variants.
fn spec_clauses(arena: &mut FormulaArena, rw: &RwProps) -> (FormulaId, Vec<FormulaId>) {
    let n_procs = 1 + rw.readers.len();
    let mut regions: Vec<(usize, PropId, PropId, PropId)> =
        vec![(0, rw.writer.0, rw.writer.1, rw.writer.2)];
    for (i, &(n, t, c)) in rw.readers.iter().enumerate() {
        regions.push((i + 1, n, t, c));
    }

    let mut globals = Vec::new();
    // Init: everyone noncritical.
    let init = {
        let ns: Vec<FormulaId> = regions.iter().map(|&(_, n, _, _)| arena.prop(n)).collect();
        arena.and_all(ns)
    };
    for &(i, n, t, c) in &regions {
        let (fn_, ft, fc) = (arena.prop(n), arena.prop(t), arena.prop(c));
        // Region cycle (as in the mutex spec, Section 2.2 clauses 2-4).
        let axt = arena.ax(i, ft);
        let ext = arena.ex(i, ft);
        let move_nt = arena.and(axt, ext);
        let cl = arena.implies(fn_, move_nt);
        globals.push(cl);
        let axc = arena.ax(i, fc);
        let cl = arena.implies(ft, axc);
        globals.push(cl);
        let axn = arena.ax(i, fn_);
        let exn = arena.ex(i, fn_);
        let move_cn = arena.and(axn, exn);
        let cl = arena.implies(fc, move_cn);
        globals.push(cl);
        // At most one region.
        for (a, b1, b2) in [(fn_, ft, fc), (ft, fn_, fc), (fc, fn_, ft)] {
            let or = arena.or(b1, b2);
            let nor = arena.not(or);
            let cl = arena.implies(a, nor);
            globals.push(cl);
        }
        // Interleaving.
        for j in 0..n_procs {
            if j != i {
                for r in [fn_, ft, fc] {
                    let ax = arena.ax(j, r);
                    let cl = arena.implies(r, ax);
                    globals.push(cl);
                }
            }
        }
        // No starvation.
        let afc = arena.af(fc);
        let cl = arena.implies(ft, afc);
        globals.push(cl);
    }
    // Writer excludes every reader — but readers do NOT exclude each
    // other (the asymmetry that distinguishes this from mutex).
    let cw = arena.prop(rw.writer.2);
    for &(_, _, cr) in &rw.readers {
        let fcr = arena.prop(cr);
        let both = arena.and(cw, fcr);
        let cl = arena.not(both);
        globals.push(cl);
    }
    // Progress.
    let t = arena.tru();
    globals.push(arena.ex_all(t));
    (init, globals)
}

/// The fault-free readers–writers problem with `readers` readers.
pub fn fault_free(readers: usize) -> SynthesisProblem {
    let mut props = PropTable::new();
    let rw = register(&mut props, readers, false);
    let mut arena = FormulaArena::new(1 + readers);
    let (init, globals) = spec_clauses(&mut arena, &rw);
    let global = arena.and_all(globals);
    let spec = Spec::new(&mut arena, init, global);
    SynthesisProblem::new(arena, props, spec, Vec::new(), Tolerance::Masking)
}

/// Readers–writers where the *writer* is subject to fail-stop failures
/// with repair (repair into `Cw` guarded on no reader being mid-read),
/// with the requested tolerance.
pub fn with_writer_fail_stop(readers: usize, tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let rw = register(&mut props, readers, true);
    let n_procs = 1 + readers;
    let mut arena = FormulaArena::new(n_procs);
    let (init, mut globals) = spec_clauses(&mut arena, &rw);
    let dw = rw.writer_down.expect("registered");
    // Coupling, as in Section 6.1: Dw ≡ no region, Dw may persist, other
    // processes preserve Dw.
    let mut coupling_cs = Vec::new();
    {
        let d = arena.prop(dw);
        let (n, t, c) = rw.writer;
        let (fn_, ft, fc) = (arena.prop(n), arena.prop(t), arena.prop(c));
        let tc = arena.or(ft, fc);
        let ntc = arena.or(fn_, tc);
        let nntc = arena.not(ntc);
        coupling_cs.push(arena.iff(d, nntc));
        let egd = arena.eg(d);
        let c2 = arena.implies(d, egd);
        coupling_cs.push(c2);
        for j in 1..n_procs {
            let ax = arena.ax(j, d);
            let c3 = arena.implies(d, ax);
            coupling_cs.push(c3);
        }
    }
    globals.extend(coupling_cs.iter().copied());
    let global = arena.and_all(globals);
    let coupling = arena.and_all(coupling_cs);
    let spec = Spec::with_coupling(init, global, coupling);

    let locals = [rw.writer.0, rw.writer.1, rw.writer.2];
    let mut faults = vec![fail_stop("W", &locals, dw)];
    faults.push(repair_to("W", rw.writer.0, "N", &locals, dw, None));
    faults.push(repair_to("W", rw.writer.1, "T", &locals, dw, None));
    let no_reader_reading: Vec<BoolExpr> = rw
        .readers
        .iter()
        .map(|&(_, _, cr)| BoolExpr::not_prop(cr))
        .collect();
    let guard = if no_reader_reading.len() == 1 {
        no_reader_reading.into_iter().next().expect("len checked")
    } else {
        BoolExpr::And(no_reader_reading)
    };
    faults.push(repair_to("W", rw.writer.2, "C", &locals, dw, Some(guard)));
    SynthesisProblem::new(arena, props, spec, faults, tol)
}
