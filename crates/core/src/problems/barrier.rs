//! The barrier synchronization problem subject to general state failures
//! (Section 6.2), plus the fail-stop variant used for the impossibility
//! result of Section 6.3.
//!
//! ### Deviation note (recorded in EXPERIMENTS.md)
//!
//! The paper's Section 6.2 states the problem-fault coupling
//! specification as `true`. Taken literally, nothing would constrain the
//! *recovery* transitions: under nonmasking tolerance the global
//! specification (including the phase order, the exactly-one-local-state
//! clauses, and the interleaving of Section 2.2 clause 6 — which §6.2
//! omits but §2.2 requires of the model of computation) need only hold
//! *eventually*, so the synthesized recovery could move several
//! processes at once or jump across phases, and the result would not be
//! expressible as synchronization skeletons at all. Figure 10's recovery
//! transitions visibly respect single-process interleaving and phase
//! order, so we take the coupling specification to be exactly those
//! model-of-computation constraints (phase order, exactly-one, and
//! interleaving), leaving the barrier conditions (clauses 7–8) and
//! progress (clause 9) as the global specification that nonmasking
//! tolerance re-establishes after a fault.

use crate::problem::{SynthesisProblem, Tolerance};
use ftsyn_ctl::{FormulaArena, FormulaId, Owner, PropId, PropTable, Spec};
use ftsyn_guarded::faults::{fail_stop, general_state, repair_to};
use ftsyn_guarded::FaultAction;

/// Proposition handles for one process of the barrier problem.
#[derive(Clone, Debug)]
pub struct BarrierProps {
    /// `SAᵢ`: start of phase A.
    pub sa: PropId,
    /// `EAᵢ`: end of phase A.
    pub ea: PropId,
    /// `SBᵢ`: start of phase B.
    pub sb: PropId,
    /// `EBᵢ`: end of phase B.
    pub eb: PropId,
    /// `Dᵢ`: down; present only in the fail-stop variant (§6.3).
    pub d: Option<PropId>,
}

impl BarrierProps {
    /// The four phase propositions in cyclic order.
    pub fn phases(&self) -> [PropId; 4] {
        [self.sa, self.ea, self.sb, self.eb]
    }
}

/// Registers the barrier propositions for `n_procs` processes.
pub fn barrier_props(
    props: &mut PropTable,
    n_procs: usize,
    with_down: bool,
) -> Vec<BarrierProps> {
    (0..n_procs)
        .map(|i| {
            let mut add = |name: &str| {
                props
                    .add(format!("{name}{}", i + 1), Owner::Process(i))
                    .expect("fresh table")
            };
            let sa = add("SA");
            let ea = add("EA");
            let sb = add("SB");
            let eb = add("EB");
            let d = with_down.then(|| {
                props
                    .add_aux(format!("D{}", i + 1), Owner::Process(i))
                    .expect("fresh table")
            });
            BarrierProps { sa, ea, sb, eb, d }
        })
        .collect()
}

/// The model-of-computation clauses (phase order, exactly-one,
/// interleaving), used as the coupling specification — see the module
/// docs. When `with_down` holds, the exactly-one clauses admit the down
/// state instead (all four phase propositions false).
fn computation_clauses(
    arena: &mut FormulaArena,
    ps: &[BarrierProps],
    with_down: bool,
) -> Vec<FormulaId> {
    let n_procs = ps.len();
    let mut cs = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let phases = p.phases();
        // (2–5) Phase order: each phase moves to the next.
        #[allow(clippy::needless_range_loop)] // k+1 wraps around the cycle
        for k in 0..4 {
            let cur = arena.prop(phases[k]);
            let nxt = arena.prop(phases[(k + 1) % 4]);
            let axn = arena.ax(i, nxt);
            let cl = arena.implies(cur, axn);
            cs.push(cl);
        }
        // (6) Exactly one local state.
        for k in 0..4 {
            let cur = arena.prop(phases[k]);
            let others: Vec<FormulaId> = (0..4)
                .filter(|&m| m != k)
                .map(|m| arena.prop(phases[m]))
                .collect();
            let disj = arena.or_all(others);
            let ndisj = arena.not(disj);
            if with_down {
                // cur → ¬(others): "at most one"; the all-false case is
                // the down state, pinned by the D ≡ … coupling clause.
                let cl = arena.implies(cur, ndisj);
                cs.push(cl);
            } else {
                let cl = arena.iff(cur, ndisj);
                cs.push(cl);
            }
        }
        // Interleaving (Section 2.2 clause 6): other processes preserve
        // Pᵢ's phase.
        for j in 0..n_procs {
            if j != i {
                for &ph in &phases {
                    let cur = arena.prop(ph);
                    let ax = arena.ax(j, cur);
                    let cl = arena.implies(cur, ax);
                    cs.push(cl);
                }
            }
        }
    }
    cs
}

/// The barrier conditions and progress (clauses 1, 7–9). Returns
/// `(init, barrier_clauses)`.
pub fn barrier_conditions(
    arena: &mut FormulaArena,
    ps: &[BarrierProps],
) -> (FormulaId, Vec<FormulaId>) {
    let init = {
        let sas: Vec<FormulaId> = ps.iter().map(|p| arena.prop(p.sa)).collect();
        arena.and_all(sas)
    };
    let mut cs = Vec::new();
    // (7) Never simultaneously at the start of different phases, and
    // (8) never simultaneously at the end of different phases.
    for i in 0..ps.len() {
        for j in 0..ps.len() {
            if i == j {
                continue;
            }
            let sai = arena.prop(ps[i].sa);
            let sbj = arena.prop(ps[j].sb);
            let and = arena.and(sai, sbj);
            let cl7 = arena.not(and);
            cs.push(cl7);
            let eai = arena.prop(ps[i].ea);
            let ebj = arena.prop(ps[j].eb);
            let and = arena.and(eai, ebj);
            let cl8 = arena.not(and);
            cs.push(cl8);
        }
    }
    // (9) Some process can always move.
    let t = arena.tru();
    cs.push(arena.ex_all(t));
    (init, cs)
}

/// The general-state fault actions of Section 6.2: for every process and
/// every local state, an always-enabled action perturbing the process
/// into that state.
pub fn general_state_faults(props: &PropTable, ps: &[BarrierProps]) -> Vec<FaultAction> {
    let mut out = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let locals: Vec<(String, PropId)> = p
            .phases()
            .iter()
            .map(|&q| (props.name(q).to_owned(), q))
            .collect();
        out.extend(general_state(&format!("P{}", i + 1), &locals));
    }
    out
}

/// The barrier synchronization problem subject to general state failures
/// with nonmasking (self-stabilizing) tolerance — the setting of
/// Figures 10 and 11.
pub fn with_general_state_faults(n_procs: usize) -> SynthesisProblem {
    let mut props = PropTable::new();
    let ps = barrier_props(&mut props, n_procs, false);
    let mut arena = FormulaArena::new(n_procs);
    let (init, mut globals) = barrier_conditions(&mut arena, &ps);
    let coupling_cs = computation_clauses(&mut arena, &ps, false);
    // The global specification also includes the computation clauses (the
    // paper's clauses 2–6 are part of the problem specification); the
    // coupling duplicates them so they also bind perturbed states.
    globals.extend(coupling_cs.iter().copied());
    let global = arena.and_all(globals);
    let coupling = arena.and_all(coupling_cs);
    let spec = Spec::with_coupling(init, global, coupling);
    let faults = general_state_faults(&props, &ps);
    SynthesisProblem::new(arena, props, spec, faults, Tolerance::Nonmasking)
}

/// The fault-free barrier problem (for the lower-bound comparison of
/// Figure 10's fault-intolerant sub-structure).
pub fn fault_free(n_procs: usize) -> SynthesisProblem {
    let mut props = PropTable::new();
    let ps = barrier_props(&mut props, n_procs, false);
    let mut arena = FormulaArena::new(n_procs);
    let (init, mut globals) = barrier_conditions(&mut arena, &ps);
    globals.extend(computation_clauses(&mut arena, &ps, false));
    let global = arena.and_all(globals);
    let spec = Spec::new(&mut arena, init, global);
    SynthesisProblem::new(arena, props, spec, Vec::new(), Tolerance::Masking)
}

/// The impossibility setting of Section 6.3: barrier synchronization
/// subject to *fail-stop* failures where a process may stay down forever
/// (`Dᵢ → EG Dᵢ`), with nonmasking tolerance required. The progress of
/// each process requires the concomitant progress of the other, so if
/// `P₁` can stay down forever, `AF AG(global)` is unachievable and the
/// tableau root is deleted.
pub fn with_fail_stop_impossible(n_procs: usize) -> SynthesisProblem {
    let mut props = PropTable::new();
    let ps = barrier_props(&mut props, n_procs, true);
    let mut arena = FormulaArena::new(n_procs);
    let (init, mut globals) = barrier_conditions(&mut arena, &ps);
    // Coupling: computation clauses in their "at most one" form (a down
    // process has no phase), plus the fail-stop coupling of Section 6.1:
    // D ≡ all-phases-false, D may persist forever, and other processes
    // preserve D.
    let mut coupling_cs = computation_clauses(&mut arena, &ps, true);
    for (i, p) in ps.iter().enumerate() {
        let d = arena.prop(p.d.expect("fail-stop variant registers D"));
        let phases: Vec<FormulaId> = p.phases().iter().map(|&q| arena.prop(q)).collect();
        let disj = arena.or_all(phases);
        let ndisj = arena.not(disj);
        let c1 = arena.iff(d, ndisj);
        coupling_cs.push(c1);
        let egd = arena.eg(d);
        let c2 = arena.implies(d, egd);
        coupling_cs.push(c2);
        for j in 0..n_procs {
            if j != i {
                let ax = arena.ax(j, d);
                let c3 = arena.implies(d, ax);
                coupling_cs.push(c3);
            }
        }
    }
    // Global: the paper's clause 6 in its *strict* exactly-one form — a
    // process is always in exactly one phase. This is the clause a
    // forever-down process violates forever: on the `EG D₁` fullpath,
    // `AG(global)` never holds, so `AF AG(global)` is unsatisfiable at
    // the perturbed state, and the deletion rules cascade to the root.
    globals.extend(computation_clauses(&mut arena, &ps, false));
    let global = arena.and_all(globals);
    let coupling = arena.and_all(coupling_cs);
    let spec = Spec::with_coupling(init, global, coupling);
    let mut faults = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let d = p.d.expect("registered above");
        let locals = p.phases();
        let pname = format!("P{}", i + 1);
        faults.push(fail_stop(&pname, &locals, d));
        faults.push(repair_to(&pname, p.sa, "SA", &locals, d, None));
    }
    SynthesisProblem::new(arena, props, spec, faults, Tolerance::Nonmasking)
}
