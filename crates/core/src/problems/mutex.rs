//! The mutual exclusion problem (Sections 2.2 and 6.1).
//!
//! Builders for the `I`-process generalization of the paper's
//! specification: fault-free (the plain Emerson–Clarke synthesis), and
//! subject to fail-stop failures with repair (Section 6.1).

use crate::problem::{SynthesisProblem, Tolerance, ToleranceAssignment};
use ftsyn_ctl::{FormulaArena, FormulaId, Owner, PropId, PropTable, Spec};
use ftsyn_guarded::faults::{fail_stop, repair_to};
use ftsyn_guarded::{BoolExpr, FaultAction};

/// Proposition handles for one process of the mutex problem.
#[derive(Clone, Debug)]
pub struct MutexProps {
    /// `Nᵢ`: in the noncritical region.
    pub n: PropId,
    /// `Tᵢ`: in the trying region.
    pub t: PropId,
    /// `Cᵢ`: in the critical region.
    pub c: PropId,
    /// `Dᵢ`: fail-stopped ("down"); only present with fail-stop faults.
    pub d: Option<PropId>,
}

/// Registers the mutex propositions for `n_procs` processes.
pub fn mutex_props(props: &mut PropTable, n_procs: usize, with_down: bool) -> Vec<MutexProps> {
    (0..n_procs)
        .map(|i| {
            let n = props
                .add(format!("N{}", i + 1), Owner::Process(i))
                .expect("fresh table");
            let t = props
                .add(format!("T{}", i + 1), Owner::Process(i))
                .expect("fresh table");
            let c = props
                .add(format!("C{}", i + 1), Owner::Process(i))
                .expect("fresh table");
            let d = with_down.then(|| {
                props
                    .add_aux(format!("D{}", i + 1), Owner::Process(i))
                    .expect("fresh table")
            });
            MutexProps { n, t, c, d }
        })
        .collect()
}

/// Builds the problem specification of Section 2.2, generalized to
/// `n_procs` processes. Returns `(init, global)`.
pub fn mutex_spec(
    arena: &mut FormulaArena,
    ps: &[MutexProps],
) -> (FormulaId, FormulaId) {
    let all_pairs: Vec<(usize, usize)> = (0..ps.len())
        .flat_map(|i| ((i + 1)..ps.len()).map(move |j| (i, j)))
        .collect();
    conflict_spec(arena, ps, &all_pairs)
}

/// The mutual exclusion specification over an arbitrary *conflict
/// graph*: only the given pairs exclude each other (clause 8 restricted
/// to graph edges). The complete graph gives the paper's mutual
/// exclusion; a cycle gives dining philosophers (each philosopher
/// conflicts with its two neighbors); an empty edge set gives
/// independent cyclers.
pub fn conflict_spec(
    arena: &mut FormulaArena,
    ps: &[MutexProps],
    conflicts: &[(usize, usize)],
) -> (FormulaId, FormulaId) {
    let n_procs = ps.len();
    let mut global: Vec<FormulaId> = Vec::new();

    // (1) Initial state: all noncritical.
    let init = {
        let ns: Vec<FormulaId> = ps.iter().map(|p| arena.prop(p.n)).collect();
        arena.and_all(ns)
    };

    for (i, p) in ps.iter().enumerate() {
        let (n, t, c) = (arena.prop(p.n), arena.prop(p.t), arena.prop(p.c));
        // (2) N → (AXᵢT ∧ EXᵢT).
        let axt = arena.ax(i, t);
        let ext = arena.ex(i, t);
        let both = arena.and(axt, ext);
        let cl2 = arena.implies(n, both);
        global.push(cl2);
        // (3) T → AXᵢC.
        let axc = arena.ax(i, c);
        let cl3 = arena.implies(t, axc);
        global.push(cl3);
        // (4) C → (AXᵢN ∧ EXᵢN).
        let axn = arena.ax(i, n);
        let exn = arena.ex(i, n);
        let both = arena.and(axn, exn);
        let cl4 = arena.implies(c, both);
        global.push(cl4);
        // (5) At most one of N, T, C.
        for (a, b1, b2) in [(n, t, c), (t, n, c), (c, n, t)] {
            let or = arena.or(b1, b2);
            let nor = arena.not(or);
            let cl5 = arena.implies(a, nor);
            global.push(cl5);
        }
        // (6) Interleaving: a transition by another process preserves
        // Pᵢ's region.
        for j in 0..n_procs {
            if j != i {
                for r in [n, t, c] {
                    let axr = arena.ax(j, r);
                    let cl6 = arena.implies(r, axr);
                    global.push(cl6);
                }
            }
        }
        // (7) No starvation: T → AF C.
        let afc = arena.af(c);
        let cl7 = arena.implies(t, afc);
        global.push(cl7);
    }
    // (8) Mutual exclusion along the conflict edges.
    for &(i, j) in conflicts {
        let ci = arena.prop(ps[i].c);
        let cj = arena.prop(ps[j].c);
        let and = arena.and(ci, cj);
        let cl8 = arena.not(and);
        global.push(cl8);
    }
    // (9) Some process can always move.
    let t = arena.tru();
    let cl9 = arena.ex_all(t);
    global.push(cl9);

    (init, arena.and_all(global))
}

/// The fault-free mutual exclusion problem (the setting of
/// Emerson–Clarke 1982; reproduced as the upper half of Figure 8).
pub fn fault_free(n_procs: usize) -> SynthesisProblem {
    let mut props = PropTable::new();
    let ps = mutex_props(&mut props, n_procs, false);
    let mut arena = FormulaArena::new(n_procs);
    let (init, global) = mutex_spec(&mut arena, &ps);
    let spec = Spec::new(&mut arena, init, global);
    SynthesisProblem::new(arena, props, spec, Vec::new(), Tolerance::Masking)
}

/// The problem-fault coupling specification of Section 6.1:
/// `Dᵢ ≡ ¬(Nᵢ∨Tᵢ∨Cᵢ)`, `Dᵢ → EG Dᵢ`, and `Dᵢ → AXⱼ Dᵢ` for `j ≠ i`.
pub fn fail_stop_coupling(arena: &mut FormulaArena, ps: &[MutexProps]) -> FormulaId {
    let n_procs = ps.len();
    let mut cs: Vec<FormulaId> = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let d = arena.prop(p.d.expect("fail-stop problems register D"));
        let (n, t, c) = (arena.prop(p.n), arena.prop(p.t), arena.prop(p.c));
        // (c1) D ≡ ¬(N ∨ T ∨ C).
        let ntc = {
            let tc = arena.or(t, c);
            arena.or(n, tc)
        };
        let nntc = arena.not(ntc);
        cs.push(arena.iff(d, nntc));
        // (c2) A fail-stopped process may stay down forever.
        let egd = arena.eg(d);
        let c2 = arena.implies(d, egd);
        cs.push(c2);
        // (c3) Other processes' transitions preserve D.
        for j in 0..n_procs {
            if j != i {
                let axd = arena.ax(j, d);
                let c3 = arena.implies(d, axd);
                cs.push(c3);
            }
        }
    }
    arena.and_all(cs)
}

/// The fail-stop fault actions of Section 6.1: per process, one
/// fail-stop and three repairs (repair into `Cᵢ` guarded on mutual
/// exclusion, footnote 11).
pub fn fail_stop_faults(ps: &[MutexProps]) -> Vec<FaultAction> {
    let mut out = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let d = p.d.expect("fail-stop problems register D");
        let locals = [p.n, p.t, p.c];
        let pname = format!("P{}", i + 1);
        out.push(fail_stop(&pname, &locals, d));
        out.push(repair_to(&pname, p.n, "N", &locals, d, None));
        out.push(repair_to(&pname, p.t, "T", &locals, d, None));
        let others: Vec<BoolExpr> = ps
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, q)| BoolExpr::not_prop(q.c))
            .collect();
        let guard = if others.len() == 1 {
            others.into_iter().next().expect("len checked")
        } else {
            BoolExpr::And(others)
        };
        out.push(repair_to(&pname, p.c, "C", &locals, d, Some(guard)));
    }
    out
}

/// The mutual exclusion problem subject to fail-stop failures
/// (Section 6.1), with the requested tolerance (the paper uses
/// [`Tolerance::Masking`]).
pub fn with_fail_stop(n_procs: usize, tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let ps = mutex_props(&mut props, n_procs, true);
    let mut arena = FormulaArena::new(n_procs);
    let (init, global) = mutex_spec(&mut arena, &ps);
    let coupling = fail_stop_coupling(&mut arena, &ps);
    let spec = Spec::with_coupling(init, global, coupling);
    let faults = fail_stop_faults(&ps);
    SynthesisProblem::new(arena, props, spec, faults, tol)
}

/// Mutual exclusion on an arbitrary conflict graph, fault-free.
/// `conflicts` lists the 0-based process pairs that exclude each other.
///
/// # Panics
///
/// Panics if an edge mentions a process index `>= n_procs`.
pub fn conflict_fault_free(n_procs: usize, conflicts: &[(usize, usize)]) -> SynthesisProblem {
    assert!(conflicts.iter().all(|&(i, j)| i < n_procs && j < n_procs));
    let mut props = PropTable::new();
    let ps = mutex_props(&mut props, n_procs, false);
    let mut arena = FormulaArena::new(n_procs);
    let (init, global) = conflict_spec(&mut arena, &ps, conflicts);
    let spec = Spec::new(&mut arena, init, global);
    SynthesisProblem::new(arena, props, spec, Vec::new(), Tolerance::Masking)
}

/// Dining philosophers around a table of size `n` (eating = the critical
/// region; neighbors conflict), fault-free. For `n ≥ 4` non-adjacent
/// philosophers may eat concurrently.
pub fn dining_philosophers(n: usize) -> SynthesisProblem {
    let ring: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    conflict_fault_free(n, &ring)
}

/// Multitolerance variant (Section 8.2): fail-stop / repair actions can
/// be assigned different tolerances per action via `assign`.
pub fn with_fail_stop_multitolerance(
    n_procs: usize,
    assign: impl Fn(&FaultAction) -> Tolerance,
) -> SynthesisProblem {
    let mut p = with_fail_stop(n_procs, Tolerance::Masking);
    let tols: Vec<Tolerance> = p.faults.iter().map(assign).collect();
    p.tolerance = ToleranceAssignment::PerFault(tols);
    p
}
