//! The wire of Section 2.3: the running example used to introduce the
//! fault model. Not a synthesis problem — a concrete guarded-command
//! system exercised by the `wire_stuck_at` example and tests.
//!
//! Two processes: the wire itself (owning `out`, the auxiliary `broken`
//! flag, and — in the bounded variant — the unary occurrence counter),
//! and an environment process freely toggling `in`. The wire's actions
//! are the paper's:
//!
//! ```text
//! out ≠ in ∧ ¬broken → out := in      (correct behavior)
//! broken             → out := 0      (stuck at low voltage)
//! ```

use ftsyn_ctl::{Owner, PropId, PropTable};
use ftsyn_guarded::faults::{stuck_at_low, stuck_at_low_bounded, stuck_at_repair};
use ftsyn_guarded::{BoolExpr, FaultAction, LocalState, ProcArc, Process, Program};
use ftsyn_kripke::PropSet;

/// The wire's propositions.
#[derive(Clone, Debug)]
pub struct WireProps {
    /// The input bit (owned by the environment process).
    pub input: PropId,
    /// The output bit.
    pub output: PropId,
    /// The auxiliary `broken` flag of the stuck-at fault.
    pub broken: PropId,
    /// Unary occurrence counter (bounded variant only).
    pub counters: Vec<PropId>,
}

/// A built wire system: the program, its propositions, and the faults.
#[derive(Debug)]
pub struct Wire {
    /// Proposition table.
    pub props: PropTable,
    /// Handles into the table.
    pub wire_props: WireProps,
    /// The program: wire process ‖ environment process.
    pub program: Program,
    /// Stuck-at-low (possibly bounded) and repair fault actions.
    pub faults: Vec<FaultAction>,
}

/// Builds the wire with an optional bound `k` on the number of stuck-at
/// occurrences (encoded in unary auxiliary propositions, Section 2.3).
pub fn build(bounded: Option<usize>) -> Wire {
    let mut props = PropTable::new();
    let output = props.add("out", Owner::Process(0)).expect("fresh");
    let broken = props.add_aux("broken", Owner::Process(0)).expect("fresh");
    let k = bounded.unwrap_or(0);
    let counters: Vec<PropId> = (0..k)
        .map(|j| {
            props
                .add_aux(format!("cnt{j}"), Owner::Process(0))
                .expect("fresh")
        })
        .collect();
    let input = props.add("in", Owner::Process(1)).expect("fresh");
    let n = props.len();
    let mk = |ps: &[PropId]| PropSet::from_iter_with_capacity(n, ps.iter().copied());

    // Wire process: local states = (out, broken) × counter level.
    // The counter is monotone unary: level c means cnt0..cnt_{c-1} set.
    let mut states = Vec::new();
    let idx = |out: bool, broken_b: bool, level: usize| -> usize {
        (level * 4) + (usize::from(broken_b) << 1) + usize::from(out)
    };
    for level in 0..=k {
        for broken_b in [false, true] {
            for out in [false, true] {
                let mut ps = Vec::new();
                if out {
                    ps.push(output);
                }
                if broken_b {
                    ps.push(broken);
                }
                ps.extend(counters.iter().take(level).copied());
                let name = format!(
                    "{}{}{}",
                    if out { "hi" } else { "lo" },
                    if broken_b { "-broken" } else { "" },
                    if k > 0 { format!("@{level}") } else { String::new() }
                );
                states.push(LocalState {
                    name,
                    props: mk(&ps),
                });
            }
        }
    }
    let mut arcs = Vec::new();
    for level in 0..=k {
        // Correct behavior: out := in when they differ and not broken.
        arcs.push(ProcArc {
            from: idx(false, false, level),
            to: idx(true, false, level),
            guard: BoolExpr::Prop(input),
            assigns: vec![],
        });
        arcs.push(ProcArc {
            from: idx(true, false, level),
            to: idx(false, false, level),
            guard: BoolExpr::not_prop(input),
            assigns: vec![],
        });
        // Broken behavior: out := 0 regardless of in.
        arcs.push(ProcArc {
            from: idx(true, true, level),
            to: idx(false, true, level),
            guard: BoolExpr::Const(true),
            assigns: vec![],
        });
        arcs.push(ProcArc {
            from: idx(false, true, level),
            to: idx(false, true, level),
            guard: BoolExpr::Const(true),
            assigns: vec![],
        });
    }
    let wire_proc = Process {
        index: 0,
        states,
        arcs,
    };

    // Environment: toggles `in` freely.
    let env = Process {
        index: 1,
        states: vec![
            LocalState {
                name: "in0".into(),
                props: mk(&[]),
            },
            LocalState {
                name: "in1".into(),
                props: mk(&[input]),
            },
        ],
        arcs: vec![
            ProcArc {
                from: 0,
                to: 1,
                guard: BoolExpr::Const(true),
                assigns: vec![],
            },
            ProcArc {
                from: 1,
                to: 0,
                guard: BoolExpr::Const(true),
                assigns: vec![],
            },
        ],
    };

    let program = Program {
        processes: vec![wire_proc, env],
        shared: vec![],
        init_locals: vec![0, 0],
        init_shared: vec![],
        num_props: n,
    };

    let faults = match bounded {
        None => vec![stuck_at_low(broken), stuck_at_repair(broken)],
        Some(_) => {
            let mut fs = stuck_at_low_bounded(broken, &counters);
            fs.push(stuck_at_repair(broken));
            fs
        }
    };

    Wire {
        props,
        wire_props: WireProps {
            input,
            output,
            broken,
            counters,
        },
        program,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_guarded::interp::explore;
    use ftsyn_guarded::sim::{simulate, SimConfig};

    #[test]
    fn wire_program_shape() {
        let w = build(None);
        assert_eq!(w.program.processes[0].states.len(), 4);
        assert_eq!(w.program.processes[1].states.len(), 2);
        assert_eq!(w.faults.len(), 2);
    }

    #[test]
    fn healthy_wire_tracks_input() {
        // Without faults, whenever the wire settles (no enabled wire
        // moves), out equals in.
        let w = build(None);
        let ex = explore(&w.program, &[], &w.props).expect("explore");
        for s in ex.kripke.state_ids() {
            let v = &ex.kripke.state(s).props;
            let wire_can_move = ex
                .kripke
                .succ(s)
                .iter()
                .any(|e| e.kind == ftsyn_kripke::TransKind::Proc(0));
            if !wire_can_move {
                assert_eq!(v.contains(w.wire_props.input), v.contains(w.wire_props.output));
            }
        }
    }

    #[test]
    fn stuck_wire_only_outputs_low() {
        let w = build(None);
        let cfg = SimConfig {
            steps: 120,
            fault_prob: 0.4,
            max_faults: 1,
            seed: 3,
        };
        // Only the stuck-at action (no repair): once broken, the output
        // goes low after the transient and stays low.
        let trace = simulate(&w.program, &w.faults[..1], &w.props, &cfg);
        assert!(trace.last_fault.is_some(), "the stuck-at must fire");
        let settled = trace
            .eventually_always_after_faults(20, |v| !v.contains(w.wire_props.output));
        assert_eq!(settled, Some(true), "output must go and stay low");
    }

    #[test]
    fn bounded_wire_respects_budget() {
        let w = build(Some(2));
        let cfg = SimConfig {
            steps: 400,
            fault_prob: 0.5,
            max_faults: 100,
            seed: 11,
        };
        // Stuck-at actions only (exclude the final repair action) — but
        // with repair included the budget must still cap stuck-ats.
        let trace = simulate(&w.program, &w.faults, &w.props, &cfg);
        let stuck_count = trace
            .steps
            .iter()
            .filter(|s| matches!(s, ftsyn_guarded::sim::SimStep::Fault { index } if *index < 2))
            .count();
        assert!(stuck_count <= 2, "unary counter caps occurrences");
        assert!(stuck_count >= 1, "the fault does occur");
    }

    #[test]
    fn bounded_faults_map_to_local_states() {
        let w = build(Some(2));
        let ex = explore(&w.program, &w.faults, &w.props);
        assert!(ex.is_ok(), "{ex:?}");
        assert!(ex.unwrap().kripke.fault_edge_count() > 0);
    }
}
