//! Ready-made synthesis problems.
//!
//! From the paper: mutual exclusion (Sections 2.2 / 6.1, generalized to
//! `n` processes and to arbitrary conflict graphs — dining philosophers
//! included), barrier synchronization (Sections 6.2 / 6.3, including the
//! impossibility variant), and the wire of Section 2.3.
//!
//! Beyond the paper: a readers–writers problem (asymmetric exclusion,
//! writer fail-stop) and a producer–consumer handshake subject to the
//! omission/timing buffer faults of Section 2.3.

pub mod barrier;
pub mod handshake;
pub mod mutex;
pub mod readers_writers;
pub mod wire;
