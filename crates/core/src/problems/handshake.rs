//! A two-phase producer–consumer handshake, subject to the buffer
//! faults of Section 2.3 (omission and timing).
//!
//! The producer owns `full` (the buffer flag), the consumer owns `ack`.
//! Normal operation is the four-phase cycle
//!
//! ```text
//! (¬full,¬ack) --P1: fill--> (full,¬ack) --P2: ack--> (full,ack)
//!      ^                                                  |
//!      +---P2: clear ack--- (¬full,ack) <--P1: empty------+
//! ```
//!
//! The *omission* fault (`is_full → is_full := false`) silently drops
//! the buffered item; the *timing* fault delays it, setting the
//! auxiliary `delayed` flag and releasing it later. Omission lands on
//! valuations the normal cycle also visits, so masking tolerance is
//! achievable; the timing fault's `delayed` flag blocks production
//! (coupling) until the release fires, which only a fault can do — so
//! masking/nonmasking are impossible for it and fail-safe is the right
//! tolerance, mirroring the tolerance taxonomy of Section 2.5.

use crate::problem::{SynthesisProblem, Tolerance};
use ftsyn_ctl::{FormulaArena, FormulaId, Owner, PropId, PropTable, Spec};
use ftsyn_guarded::faults::{omission, timing};

/// Proposition handles for the handshake.
#[derive(Clone, Debug)]
pub struct HandshakeProps {
    /// Buffer flag, owned by the producer.
    pub full: PropId,
    /// Acknowledgement, owned by the consumer.
    pub ack: PropId,
    /// Timing-fault auxiliary (timing variant only).
    pub delayed: Option<PropId>,
}

/// Which fault class to subject the buffer to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferFault {
    /// No faults (the plain handshake).
    None,
    /// The buffer loses its content (`is_full → is_full := false`).
    Omission,
    /// Access to the content is delayed (Section 2.3's two actions).
    Timing,
}

/// Builds the handshake problem with the given fault class and
/// tolerance.
pub fn build(fault: BufferFault, tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let full = props.add("full", Owner::Process(0)).expect("fresh");
    let ack = props.add("ack", Owner::Process(1)).expect("fresh");
    let delayed = (fault == BufferFault::Timing)
        .then(|| props.add_aux("delayed", Owner::Process(0)).expect("fresh"));
    let mut arena = FormulaArena::new(2);
    let (ff, fa) = (arena.prop(full), arena.prop(ack));
    let (nf, na) = (arena.neg_prop(full), arena.neg_prop(ack));

    let mut globals: Vec<FormulaId> = Vec::new();
    // Handshake order (safety): the producer fills only from
    // (¬full,¬ack) and empties only from (full,ack); the consumer acks
    // only a full buffer and clears only an empty one.
    let pairs: [(FormulaId, FormulaId, usize, FormulaId); 4] = [
        // (state-part-1, state-part-2, mover, what the mover must preserve)
        (nf, fa, 0, nf), // producer cannot fill while ack pending
        (ff, na, 0, ff), // producer cannot retract before ack
        (nf, na, 1, na), // consumer cannot ack an empty buffer
        (ff, fa, 1, fa), // consumer holds ack until the buffer clears
    ];
    for (a, b, mover, keep) in pairs {
        let st = arena.and(a, b);
        let ax = arena.ax(mover, keep);
        let cl = arena.implies(st, ax);
        globals.push(cl);
    }
    // Interleaving (Section 2.2 clause 6): the consumer never modifies
    // `full`, the producer never modifies `ack`.
    for (owner_lit, other) in [(ff, 1), (nf, 1), (fa, 0), (na, 0)] {
        let ax = arena.ax(other, owner_lit);
        let cl = arena.implies(owner_lit, ax);
        globals.push(cl);
    }
    // Liveness: the cycle keeps turning.
    let cycle: [(FormulaId, FormulaId, FormulaId); 4] = [
        (nf, na, ff), // production
        (ff, na, fa), // delivery
        (ff, fa, nf), // emptying
        (nf, fa, na), // ack clearing
    ];
    for (a, b, goal) in cycle {
        let st = arena.and(a, b);
        let af = arena.af(goal);
        let cl = arena.implies(st, af);
        globals.push(cl);
    }
    // Progress.
    let t = arena.tru();
    globals.push(arena.ex_all(t));
    let global = arena.and_all(globals);
    let init = arena.and(nf, na);

    // Coupling for the timing fault: while delayed, the producer cannot
    // re-fill the buffer (the item is in flight), and only the fault's
    // release action clears `delayed`.
    let coupling = if let Some(d) = delayed {
        let fd = arena.prop(d);
        let ax_nf = arena.ax(0, nf);
        let c1 = arena.implies(fd, ax_nf);
        let ax_d = arena.ax(0, fd);
        let ax_d2 = arena.ax(1, fd);
        let keep = arena.and(ax_d, ax_d2);
        let c2 = arena.implies(fd, keep);
        arena.and(c1, c2)
    } else {
        arena.tru()
    };
    let spec = Spec::with_coupling(init, global, coupling);

    let faults = match fault {
        BufferFault::None => vec![],
        BufferFault::Omission => vec![omission(full)],
        BufferFault::Timing => timing(full, delayed.expect("registered")),
    };
    SynthesisProblem::new(arena, props, spec, faults, tol)
}
