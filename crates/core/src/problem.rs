//! The synthesis problem (Section 3) and tolerance labels
//! (Definition 2.1, extended to multitolerance per Section 8.2).

use ftsyn_ctl::{Closure, FormulaArena, FormulaId, LabelSet, PropTable, Spec};
use ftsyn_guarded::FaultAction;
use ftsyn_tableau::CertMode;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The kind of fault tolerance required (Section 2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Tolerance {
    /// Safety and liveness both hold at perturbed states:
    /// `Label = AG(global) ∧ AG(coupling)`.
    Masking,
    /// Liveness holds; safety holds eventually:
    /// `Label = AF AG(global) ∧ AG(coupling)`.
    Nonmasking,
    /// Only the safety part holds:
    /// `Label = AG(global–safety) ∧ AG(coupling)`.
    FailSafe,
}

/// How tolerances are assigned to fault actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToleranceAssignment {
    /// Every fault action gets the same tolerance.
    Uniform(Tolerance),
    /// Multitolerance (Section 8.2): one tolerance per fault action, in
    /// fault-action order.
    PerFault(Vec<Tolerance>),
}

impl ToleranceAssignment {
    /// The tolerance of the `i`-th fault action.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for a `PerFault` assignment.
    pub fn of(&self, i: usize) -> Tolerance {
        match self {
            ToleranceAssignment::Uniform(t) => *t,
            ToleranceAssignment::PerFault(v) => v[i],
        }
    }

    /// All distinct tolerances in use.
    pub fn distinct(&self) -> Vec<Tolerance> {
        match self {
            ToleranceAssignment::Uniform(t) => vec![*t],
            ToleranceAssignment::PerFault(v) => {
                let mut out = Vec::new();
                for &t in v {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                out
            }
        }
    }
}

/// A complete synthesis problem: the temporal specification, the fault
/// specification, and the required tolerance(s).
#[derive(Debug)]
pub struct SynthesisProblem {
    /// Formula arena (owns every formula of the problem).
    pub arena: FormulaArena,
    /// Atomic propositions, including fault-specification auxiliaries.
    pub props: PropTable,
    /// `init ∧ AG(global) ∧ AG(coupling)`.
    pub spec: Spec,
    /// The fault actions `F`.
    pub faults: Vec<FaultAction>,
    /// Required tolerance per fault action.
    pub tolerance: ToleranceAssignment,
    /// Which correctness statement to synthesize for: the paper's main
    /// method (`⊨ₙ`, [`CertMode::FaultFree`]) or the alternative method
    /// of Section 8.3 (`⊨` over fault-prone paths,
    /// [`CertMode::FaultProne`]).
    pub mode: CertMode,
}

impl SynthesisProblem {
    /// Creates a problem with a uniform tolerance.
    pub fn new(
        arena: FormulaArena,
        props: PropTable,
        spec: Spec,
        faults: Vec<FaultAction>,
        tolerance: Tolerance,
    ) -> SynthesisProblem {
        SynthesisProblem {
            arena,
            props,
            spec,
            faults,
            tolerance: ToleranceAssignment::Uniform(tolerance),
            mode: CertMode::FaultFree,
        }
    }

    /// Switches to the alternative method of Section 8.3: eventualities
    /// are fulfilled along *all* paths, including those on which faults
    /// keep occurring, and the produced model is verified under the
    /// plain (non-relativized) satisfaction relation.
    #[must_use]
    pub fn with_fault_prone_correctness(mut self) -> SynthesisProblem {
        self.mode = CertMode::FaultProne;
        self
    }

    /// The formulae of `Label_TOL(spec)` (Definition 2.1) for a given
    /// tolerance, as individual conjuncts.
    pub fn label_tol_formulas(&mut self, tol: Tolerance) -> Vec<FormulaId> {
        let ag_coupling = self.spec.ag_coupling(&mut self.arena);
        let first = match tol {
            Tolerance::Masking => self.spec.ag_global(&mut self.arena),
            Tolerance::Nonmasking => {
                let agg = self.spec.ag_global(&mut self.arena);
                self.arena.af(agg)
            }
            Tolerance::FailSafe => {
                let safety = self.spec.global_safety(&mut self.arena);
                self.arena.ag(safety)
            }
        };
        vec![first, ag_coupling]
    }

    /// All formulae that must be members of the closure: the temporal
    /// specification and every tolerance label in use.
    pub fn closure_roots(&mut self) -> Vec<FormulaId> {
        let mut roots = vec![self.spec.formula(&mut self.arena)];
        for tol in self.tolerance.distinct() {
            roots.extend(self.label_tol_formulas(tol));
        }
        roots
    }

    /// Converts the `Label_a(spec)` of every fault action into closure
    /// label sets (requires the closure to have been built over
    /// [`SynthesisProblem::closure_roots`]).
    ///
    /// # Panics
    ///
    /// Panics if a tolerance formula is missing from the closure.
    pub fn tolerance_label_sets(&mut self, closure: &Closure) -> Vec<LabelSet> {
        (0..self.faults.len())
            .map(|i| {
                let tol = self.tolerance.of(i);
                let mut l = closure.empty_label();
                for f in self.label_tol_formulas(tol) {
                    l.insert(
                        closure
                            .index_of(f)
                            .expect("tolerance formulae are closure roots"),
                    );
                }
                l
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn_ctl::{parse::parse, print::render, Owner};

    fn sample(tol: Tolerance) -> SynthesisProblem {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let init = parse(&mut arena, &mut props, "p", false).unwrap();
        let global = parse(&mut arena, &mut props, "p & AG EX1 true", false).unwrap();
        let spec = Spec::new(&mut arena, init, global);
        SynthesisProblem::new(arena, props, spec, vec![], tol)
    }

    #[test]
    fn masking_label_is_ag_global() {
        let mut p = sample(Tolerance::Masking);
        let ls = p.label_tol_formulas(Tolerance::Masking);
        let txt = render(&p.arena, &p.props, ls[0]);
        assert!(txt.starts_with("AG("), "{txt}");
        assert_eq!(render(&p.arena, &p.props, ls[1]), "AG true");
    }

    #[test]
    fn nonmasking_label_is_af_ag_global() {
        let mut p = sample(Tolerance::Nonmasking);
        let ls = p.label_tol_formulas(Tolerance::Nonmasking);
        let txt = render(&p.arena, &p.props, ls[0]);
        assert!(txt.starts_with("AF(AG"), "{txt}");
    }

    #[test]
    fn failsafe_label_drops_liveness() {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let init = parse(&mut arena, &mut props, "p", false).unwrap();
        let global = parse(&mut arena, &mut props, "p & AF q", false).unwrap();
        let spec = Spec::new(&mut arena, init, global);
        let mut prob = SynthesisProblem::new(arena, props, spec, vec![], Tolerance::FailSafe);
        let ls = prob.label_tol_formulas(Tolerance::FailSafe);
        let txt = render(&prob.arena, &prob.props, ls[0]);
        assert_eq!(txt, "AG p", "safety extraction drops AF q: {txt}");
    }

    #[test]
    fn per_fault_assignment() {
        let ta = ToleranceAssignment::PerFault(vec![Tolerance::Masking, Tolerance::Nonmasking]);
        assert_eq!(ta.of(0), Tolerance::Masking);
        assert_eq!(ta.of(1), Tolerance::Nonmasking);
        assert_eq!(
            ta.distinct(),
            vec![Tolerance::Masking, Tolerance::Nonmasking]
        );
    }

    #[test]
    fn closure_roots_cover_tolerances() {
        let mut p = sample(Tolerance::Nonmasking);
        let roots = p.closure_roots();
        assert_eq!(roots.len(), 3, "spec + 2 label formulae");
    }
}
