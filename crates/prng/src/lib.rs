//! A small deterministic pseudo-random number generator.
//!
//! The crates-io registry is not reachable from the offline build
//! environment, so the simulator, the benchmarks and the randomized
//! test suites use this hand-rolled xorshift64* generator instead of
//! the `rand` crate. It is *not* cryptographically secure and is not
//! meant to be: all users need is a fast, seedable, well-mixed stream
//! that makes randomized tests reproducible from a printed seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A xorshift64* pseudo-random number generator (Vigna 2016).
///
/// The state is a single nonzero 64-bit word; `next_u64` applies the
/// xorshift step and a finalizing multiplication, which passes the
/// usual empirical test batteries far beyond what the test suites here
/// require.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped (the
    /// all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire); the slight
        // modulo bias of the naive approach would be irrelevant here,
        // but this is just as cheap.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as usize
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A reference to a uniformly chosen element of `items`, or `None`
    /// if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut g = XorShift64::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = g.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut g = XorShift64::new(11);
        let hits = (0..10_000).filter(|_| g.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = XorShift64::new(3);
        for _ in 0..100 {
            let v = g.range(10, 13);
            assert!((10..13).contains(&v));
        }
    }
}
