//! Property-based tests for the CTL substrate: PNF negation, printing /
//! parsing round trips, closure invariants.

use ftsyn_ctl::{parse::parse, print::render, Closure, FormulaArena, FormulaId, Owner, PropTable};
use proptest::prelude::*;

const NUM_PROCS: usize = 2;
const NUM_PROPS: usize = 4;

fn fresh() -> (FormulaArena, PropTable) {
    let mut props = PropTable::new();
    for k in 0..NUM_PROPS {
        props
            .add(format!("v{k}"), Owner::Process(k % NUM_PROCS))
            .unwrap();
    }
    (FormulaArena::new(NUM_PROCS), props)
}

/// A recipe for building a random formula without holding arena borrows.
#[derive(Clone, Debug)]
enum Recipe {
    Tru,
    Fls,
    Prop(usize),
    NegProp(usize),
    Not(Box<Recipe>),
    And(Box<Recipe>, Box<Recipe>),
    Or(Box<Recipe>, Box<Recipe>),
    Ax(usize, Box<Recipe>),
    Ex(usize, Box<Recipe>),
    Au(Box<Recipe>, Box<Recipe>),
    Eu(Box<Recipe>, Box<Recipe>),
    Aw(Box<Recipe>, Box<Recipe>),
    Ew(Box<Recipe>, Box<Recipe>),
    Af(Box<Recipe>),
    Ag(Box<Recipe>),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        Just(Recipe::Tru),
        Just(Recipe::Fls),
        (0..NUM_PROPS).prop_map(Recipe::Prop),
        (0..NUM_PROPS).prop_map(Recipe::NegProp),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Recipe::Not(Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Recipe::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Or(Box::new(a), Box::new(b))),
            (0..NUM_PROCS, inner.clone()).prop_map(|(i, r)| Recipe::Ax(i, Box::new(r))),
            (0..NUM_PROCS, inner.clone()).prop_map(|(i, r)| Recipe::Ex(i, Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Au(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Eu(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Aw(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Ew(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|r| Recipe::Af(Box::new(r))),
            inner.prop_map(|r| Recipe::Ag(Box::new(r))),
        ]
    })
}

fn build(arena: &mut FormulaArena, props: &PropTable, r: &Recipe) -> FormulaId {
    match r {
        Recipe::Tru => arena.tru(),
        Recipe::Fls => arena.fls(),
        Recipe::Prop(k) => {
            let p = props.id(&format!("v{k}")).unwrap();
            arena.prop(p)
        }
        Recipe::NegProp(k) => {
            let p = props.id(&format!("v{k}")).unwrap();
            arena.neg_prop(p)
        }
        Recipe::Not(a) => {
            let fa = build(arena, props, a);
            arena.not(fa)
        }
        Recipe::And(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.and(fa, fb)
        }
        Recipe::Or(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.or(fa, fb)
        }
        Recipe::Ax(i, a) => {
            let fa = build(arena, props, a);
            arena.ax(*i, fa)
        }
        Recipe::Ex(i, a) => {
            let fa = build(arena, props, a);
            arena.ex(*i, fa)
        }
        Recipe::Au(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.au(fa, fb)
        }
        Recipe::Eu(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.eu(fa, fb)
        }
        Recipe::Aw(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.aw(fa, fb)
        }
        Recipe::Ew(a, b) => {
            let fa = build(arena, props, a);
            let fb = build(arena, props, b);
            arena.ew(fa, fb)
        }
        Recipe::Af(a) => {
            let fa = build(arena, props, a);
            arena.af(fa)
        }
        Recipe::Ag(a) => {
            let fa = build(arena, props, a);
            arena.ag(fa)
        }
    }
}

proptest! {
    /// Negation is an involution on PNF formulae.
    #[test]
    fn double_negation_is_identity(r in recipe_strategy()) {
        let (mut arena, props) = fresh();
        let f = build(&mut arena, &props, &r);
        let nf = arena.not(f);
        let nnf = arena.not(nf);
        prop_assert_eq!(nnf, f);
    }

    /// print → parse is the identity on interned formulae.
    #[test]
    fn print_parse_round_trip(r in recipe_strategy()) {
        let (mut arena, mut props) = fresh();
        let f = build(&mut arena, &props, &r);
        let txt = render(&arena, &props, f);
        let g = parse(&mut arena, &mut props, &txt, false)
            .map_err(|e| TestCaseError::fail(format!("reparse of `{txt}` failed: {e}")))?;
        prop_assert_eq!(g, f, "round trip changed `{}` into `{}`",
            txt, render(&arena, &props, g));
    }

    /// The closure contains every root, is closed under expansion
    /// components, and respects the paper's size bound (adapted for the
    /// desugared AX/EX chains: |cl(f)| ≤ 2·|f|·(I+2) plus the seeded
    /// literals and constants).
    #[test]
    fn closure_is_closed_and_bounded(r in recipe_strategy()) {
        let (mut arena, props) = fresh();
        let f = build(&mut arena, &props, &r);
        let flen = arena.length(f);
        let cl = Closure::build(&mut arena, &props, &[f]);
        prop_assert!(cl.index_of(f).is_some());
        let seeded = 2 * NUM_PROPS + NUM_PROCS + 2;
        prop_assert!(
            cl.len() <= 2 * flen * (NUM_PROCS + 2) + seeded,
            "closure size {} exceeds bound for |f| = {}", cl.len(), flen
        );
        // Closedness: every entry's expansion components are entries.
        for idx in cl.indices() {
            match cl.expansion(idx) {
                ftsyn_ctl::Expansion::Elementary => {}
                ftsyn_ctl::Expansion::Alpha(a, b) | ftsyn_ctl::Expansion::Beta(a, b) => {
                    prop_assert!((a as usize) < cl.len());
                    prop_assert!((b as usize) < cl.len());
                }
            }
        }
    }

    /// Hash-consing: structurally identical builds intern identically.
    #[test]
    fn hash_consing_is_stable(r in recipe_strategy()) {
        let (mut arena, props) = fresh();
        let f1 = build(&mut arena, &props, &r);
        let f2 = build(&mut arena, &props, &r);
        prop_assert_eq!(f1, f2);
    }
}
