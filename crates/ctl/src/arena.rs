//! Hash-consed CTL formulae in positive normal form.
//!
//! Formulae are kept in *positive normal form* (PNF) at all times:
//! negation is applied only to atomic propositions. The [`FormulaArena`]
//! constructors push negations inward eagerly using the dualities of the
//! paper (Section 4): `¬A[gUh] ≡ E[¬gW¬h]`, `¬AXᵢf ≡ EXᵢ¬f`, De Morgan,
//! and so on.
//!
//! The modalities `AF`, `EF`, `AG`, `EG` and the unindexed `AX`/`EX` are
//! treated as the paper's abbreviations and are desugared at construction:
//!
//! * `AF g ≡ A[true U g]`, `EF g ≡ E[true U g]`
//! * `AG g ≡ A[false W g]`, `EG g ≡ E[false W g]`
//! * `AX g ≡ AX₁g ∧ … ∧ AX_I g`, `EX g ≡ EX₁g ∨ … ∨ EX_I g`
//!
//! Note the argument convention for weak until, taken from the paper's
//! α-expansion `A[gWh] ≡ h ∧ (g ∨ AX A[gWh])`: in `A[g W h]` the second
//! argument `h` is the invariant that holds up to and including the first
//! state where the release `g` holds.

use crate::ids::{FormulaId, PropId};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A CTL formula node in positive normal form.
///
/// All children are [`FormulaId`]s into the owning [`FormulaArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A positive literal.
    Prop(PropId),
    /// A negative literal (the only form of negation in PNF).
    NegProp(PropId),
    /// Conjunction.
    And(FormulaId, FormulaId),
    /// Disjunction.
    Or(FormulaId, FormulaId),
    /// `AXᵢ f`: after every transition of process `i`, `f` holds.
    Ax(usize, FormulaId),
    /// `EXᵢ f`: after some transition of process `i`, `f` holds.
    Ex(usize, FormulaId),
    /// `A[g U h]`: along all fullpaths, `h` eventually holds, with `g`
    /// holding until then.
    Au(FormulaId, FormulaId),
    /// `E[g U h]`: along some fullpath, `h` eventually holds, with `g`
    /// holding until then.
    Eu(FormulaId, FormulaId),
    /// `A[g W h]` (weak): along all fullpaths, `h` holds up to and
    /// including the first state where `g` holds; if `g` never holds, `h`
    /// holds forever. Defined as `¬E[¬g U ¬h]`.
    Aw(FormulaId, FormulaId),
    /// `E[g W h]` (weak): as [`Formula::Aw`] but along some fullpath.
    /// Defined as `¬A[¬g U ¬h]`.
    Ew(FormulaId, FormulaId),
}

/// Arena of hash-consed PNF formulae for a fixed number of processes.
///
/// # Examples
///
/// ```
/// use ftsyn_ctl::{FormulaArena, PropTable, Owner};
///
/// let mut props = PropTable::new();
/// let n1 = props.add("N1", Owner::Process(0)).unwrap();
/// let mut arena = FormulaArena::new(2);
/// let p = arena.prop(n1);
/// let f = arena.ag(p);
/// // Hash-consing: building the same formula twice yields the same id.
/// assert_eq!(f, arena.ag(p));
/// ```
#[derive(Clone, Debug)]
pub struct FormulaArena {
    nodes: Vec<Formula>,
    index: HashMap<Formula, FormulaId>,
    num_procs: usize,
}

impl FormulaArena {
    /// Creates an arena for formulae over `num_procs` processes.
    ///
    /// # Panics
    ///
    /// Panics if `num_procs` is zero.
    pub fn new(num_procs: usize) -> Self {
        assert!(num_procs > 0, "at least one process is required");
        let mut a = FormulaArena {
            nodes: Vec::new(),
            index: HashMap::new(),
            num_procs,
        };
        // Pre-intern the constants so `tru()`/`fls()` are infallible and
        // stable across arenas.
        a.intern(Formula::True);
        a.intern(Formula::False);
        a
    }

    /// The number of processes this arena was created for.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Number of distinct formulae interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no formulae (never true in practice, since
    /// the constants are pre-interned).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, f: Formula) -> FormulaId {
        if let Some(&id) = self.index.get(&f) {
            return id;
        }
        let id = FormulaId(self.nodes.len() as u32);
        self.nodes.push(f);
        self.index.insert(f, id);
        id
    }

    /// The formula node for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this arena.
    pub fn get(&self, id: FormulaId) -> Formula {
        self.nodes[id.index()]
    }

    /// The constant `true`.
    pub fn tru(&mut self) -> FormulaId {
        self.intern(Formula::True)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> FormulaId {
        self.intern(Formula::False)
    }

    /// The positive literal for `p`.
    pub fn prop(&mut self, p: PropId) -> FormulaId {
        self.intern(Formula::Prop(p))
    }

    /// The negative literal for `p`.
    pub fn neg_prop(&mut self, p: PropId) -> FormulaId {
        self.intern(Formula::NegProp(p))
    }

    /// Conjunction with constant folding and idempotence
    /// (`true ∧ f = f`, `false ∧ f = false`, `f ∧ f = f`).
    pub fn and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (self.get(a), self.get(b)) {
            (Formula::True, _) => b,
            (_, Formula::True) => a,
            (Formula::False, _) | (_, Formula::False) => self.fls(),
            _ if a == b => a,
            _ => self.intern(Formula::And(a, b)),
        }
    }

    /// Disjunction with constant folding and idempotence.
    pub fn or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (self.get(a), self.get(b)) {
            (Formula::False, _) => b,
            (_, Formula::False) => a,
            (Formula::True, _) | (_, Formula::True) => self.tru(),
            _ if a == b => a,
            _ => self.intern(Formula::Or(a, b)),
        }
    }

    /// Right-associated conjunction of all formulae in `items`.
    ///
    /// Returns `true` for an empty iterator.
    pub fn and_all<I: IntoIterator<Item = FormulaId>>(&mut self, items: I) -> FormulaId {
        let items: Vec<_> = items.into_iter().collect();
        let mut acc = self.tru();
        for &f in items.iter().rev() {
            acc = self.and(f, acc);
        }
        acc
    }

    /// Right-associated disjunction of all formulae in `items`.
    ///
    /// Returns `false` for an empty iterator.
    pub fn or_all<I: IntoIterator<Item = FormulaId>>(&mut self, items: I) -> FormulaId {
        let items: Vec<_> = items.into_iter().collect();
        let mut acc = self.fls();
        for &f in items.iter().rev() {
            acc = self.or(f, acc);
        }
        acc
    }

    /// Negation, pushed inward to maintain positive normal form.
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        match self.get(f) {
            Formula::True => self.fls(),
            Formula::False => self.tru(),
            Formula::Prop(p) => self.neg_prop(p),
            Formula::NegProp(p) => self.prop(p),
            Formula::And(a, b) => {
                let na = self.not(a);
                let nb = self.not(b);
                self.or(na, nb)
            }
            Formula::Or(a, b) => {
                let na = self.not(a);
                let nb = self.not(b);
                self.and(na, nb)
            }
            Formula::Ax(i, g) => {
                let ng = self.not(g);
                self.ex(i, ng)
            }
            Formula::Ex(i, g) => {
                let ng = self.not(g);
                self.ax(i, ng)
            }
            Formula::Au(g, h) => {
                let ng = self.not(g);
                let nh = self.not(h);
                self.ew(ng, nh)
            }
            Formula::Eu(g, h) => {
                let ng = self.not(g);
                let nh = self.not(h);
                self.aw(ng, nh)
            }
            Formula::Aw(g, h) => {
                let ng = self.not(g);
                let nh = self.not(h);
                self.eu(ng, nh)
            }
            Formula::Ew(g, h) => {
                let ng = self.not(g);
                let nh = self.not(h);
                self.au(ng, nh)
            }
        }
    }

    /// Implication `a ⇒ b`, desugared to `¬a ∨ b`.
    pub fn implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Biconditional `a ≡ b`, desugared to `(a ⇒ b) ∧ (b ⇒ a)`.
    pub fn iff(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(ab, ba)
    }

    /// `AXᵢ f` for 0-based process index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_procs`.
    pub fn ax(&mut self, i: usize, f: FormulaId) -> FormulaId {
        assert!(i < self.num_procs, "process index out of range");
        self.intern(Formula::Ax(i, f))
    }

    /// `EXᵢ f` for 0-based process index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_procs`.
    pub fn ex(&mut self, i: usize, f: FormulaId) -> FormulaId {
        assert!(i < self.num_procs, "process index out of range");
        self.intern(Formula::Ex(i, f))
    }

    /// Unindexed `AX f = AX₁f ∧ … ∧ AX_I f`.
    pub fn ax_all(&mut self, f: FormulaId) -> FormulaId {
        let parts: Vec<_> = (0..self.num_procs).map(|i| self.ax(i, f)).collect();
        self.and_all(parts)
    }

    /// Unindexed `EX f = EX₁f ∨ … ∨ EX_I f`.
    pub fn ex_all(&mut self, f: FormulaId) -> FormulaId {
        let parts: Vec<_> = (0..self.num_procs).map(|i| self.ex(i, f)).collect();
        self.or_all(parts)
    }

    /// `A[g U h]`.
    pub fn au(&mut self, g: FormulaId, h: FormulaId) -> FormulaId {
        self.intern(Formula::Au(g, h))
    }

    /// `E[g U h]`.
    pub fn eu(&mut self, g: FormulaId, h: FormulaId) -> FormulaId {
        self.intern(Formula::Eu(g, h))
    }

    /// `A[g W h]` — see the module docs for the argument convention.
    pub fn aw(&mut self, g: FormulaId, h: FormulaId) -> FormulaId {
        self.intern(Formula::Aw(g, h))
    }

    /// `E[g W h]` — see the module docs for the argument convention.
    pub fn ew(&mut self, g: FormulaId, h: FormulaId) -> FormulaId {
        self.intern(Formula::Ew(g, h))
    }

    /// `AF g ≡ A[true U g]`.
    pub fn af(&mut self, g: FormulaId) -> FormulaId {
        let t = self.tru();
        self.au(t, g)
    }

    /// `EF g ≡ E[true U g]`.
    pub fn ef(&mut self, g: FormulaId) -> FormulaId {
        let t = self.tru();
        self.eu(t, g)
    }

    /// `AG g ≡ A[false W g]`.
    pub fn ag(&mut self, g: FormulaId) -> FormulaId {
        let f = self.fls();
        self.aw(f, g)
    }

    /// `EG g ≡ E[false W g]`.
    pub fn eg(&mut self, g: FormulaId) -> FormulaId {
        let f = self.fls();
        self.ew(f, g)
    }

    /// The paper's length measure `|f|`: number of occurrences of atomic
    /// propositions, propositional connectives and CTL modalities.
    pub fn length(&self, f: FormulaId) -> usize {
        match self.get(f) {
            Formula::True | Formula::False | Formula::Prop(_) => 1,
            Formula::NegProp(_) => 2,
            Formula::And(a, b) | Formula::Or(a, b) => 1 + self.length(a) + self.length(b),
            Formula::Ax(_, g) | Formula::Ex(_, g) => 1 + self.length(g),
            Formula::Au(g, h) | Formula::Eu(g, h) | Formula::Aw(g, h) | Formula::Ew(g, h) => {
                1 + self.length(g) + self.length(h)
            }
        }
    }

    /// Splits a right-nested conjunction into its conjuncts.
    pub fn conjuncts(&self, f: FormulaId) -> Vec<FormulaId> {
        let mut out = Vec::new();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            match self.get(g) {
                Formula::And(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                _ => out.push(g),
            }
        }
        out
    }

    /// Whether `f` contains an eventuality (`AU`/`EU`, hence also the
    /// derived `AF`/`EF`) anywhere. Formulae without eventualities are
    /// syntactically *safety* formulae (invariances); this test implements
    /// the safety-extraction assumption of Section 2.5.
    pub fn contains_eventuality(&self, f: FormulaId) -> bool {
        match self.get(f) {
            Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_) => false,
            Formula::And(a, b) | Formula::Or(a, b) => {
                self.contains_eventuality(a) || self.contains_eventuality(b)
            }
            Formula::Ax(_, g) | Formula::Ex(_, g) => self.contains_eventuality(g),
            Formula::Au(_, _) | Formula::Eu(_, _) => true,
            Formula::Aw(g, h) | Formula::Ew(g, h) => {
                self.contains_eventuality(g) || self.contains_eventuality(h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{Owner, PropTable};

    fn setup() -> (FormulaArena, PropId, PropId) {
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let q = props.add("q", Owner::Process(1)).unwrap();
        (FormulaArena::new(2), p, q)
    }

    #[test]
    fn hash_consing_dedups() {
        let (mut a, p, _) = setup();
        let x = a.prop(p);
        let f1 = a.af(x);
        let f2 = a.af(x);
        assert_eq!(f1, f2);
    }

    #[test]
    fn not_is_involutive() {
        let (mut a, p, q) = setup();
        let x = a.prop(p);
        let y = a.prop(q);
        let au = a.au(x, y);
        let ag = a.ag(au);
        let ex = a.ex(1, ag);
        for f in [x, y, au, ag, ex] {
            let nf = a.not(f);
            assert_eq!(a.not(nf), f, "double negation must restore {f:?}");
        }
    }

    #[test]
    fn negation_dualities_match_paper() {
        let (mut a, p, q) = setup();
        let x = a.prop(p);
        let y = a.prop(q);
        // ¬A[gUh] ≡ E[¬gW¬h]
        let au = a.au(x, y);
        let nau = a.not(au);
        let nx = a.not(x);
        let ny = a.not(y);
        assert_eq!(a.get(nau), Formula::Ew(nx, ny));
        // ¬AXᵢ f ≡ EXᵢ ¬f
        let ax = a.ax(0, x);
        let nax = a.not(ax);
        assert_eq!(a.get(nax), Formula::Ex(0, nx));
    }

    #[test]
    fn and_or_simplification() {
        let (mut a, p, _) = setup();
        let x = a.prop(p);
        let t = a.tru();
        let f = a.fls();
        assert_eq!(a.and(t, x), x);
        assert_eq!(a.and(x, f), f);
        assert_eq!(a.or(f, x), x);
        assert_eq!(a.or(x, t), t);
        assert_eq!(a.and(x, x), x);
        assert_eq!(a.or(x, x), x);
    }

    #[test]
    fn sugar_desugars_per_paper() {
        let (mut a, p, _) = setup();
        let x = a.prop(p);
        let t = a.tru();
        let fl = a.fls();
        let af = a.af(x);
        assert_eq!(a.get(af), Formula::Au(t, x));
        let ag = a.ag(x);
        assert_eq!(a.get(ag), Formula::Aw(fl, x));
        let ex_all = a.ex_all(x);
        // EX x over 2 processes = EX₀x ∨ EX₁x
        let e0 = a.ex(0, x);
        let e1 = a.ex(1, x);
        assert_eq!(ex_all, a.or(e0, e1));
    }

    #[test]
    fn length_counts_connectives() {
        let (mut a, p, q) = setup();
        let x = a.prop(p);
        let y = a.prop(q);
        // AG(p ⇒ AF q) = A[false W (¬p ∨ A[true U q])]
        let af = a.af(y);
        let imp = a.implies(x, af);
        let f = a.ag(imp);
        // Aw(1) + False(1) + Or(1) + NegProp(2) + Au(1) + True(1) + q(1) = 8
        assert_eq!(a.length(f), 8);
    }

    #[test]
    fn conjunct_splitting() {
        let (mut a, p, q) = setup();
        let x = a.prop(p);
        let y = a.prop(q);
        let ny = a.neg_prop(q);
        let c1 = a.and(y, ny);
        // folded to false? p ∧ (q ∧ ¬q) — no contradiction folding, so And stays
        let f = a.and(x, c1);
        let cs = a.conjuncts(f);
        assert_eq!(cs, vec![x, y, ny]);
    }

    #[test]
    fn eventuality_detection() {
        let (mut a, p, q) = setup();
        let x = a.prop(p);
        let y = a.prop(q);
        let af = a.af(y);
        let safety = a.ag(x);
        let mixed = a.ag(af);
        assert!(!a.contains_eventuality(safety));
        assert!(a.contains_eventuality(af));
        assert!(a.contains_eventuality(mixed));
    }

    #[test]
    #[should_panic(expected = "process index out of range")]
    fn process_index_validated() {
        let (mut a, p, _) = setup();
        let x = a.prop(p);
        let _ = a.ax(2, x);
    }
}
