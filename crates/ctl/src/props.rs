//! Atomic propositions and their partition among processes.
//!
//! The paper partitions the set `AP` of atomic propositions into
//! `AP_1, …, AP_I`: the propositions in `AP_i` are *local to* process `i`
//! (other processes may read them but only process `i` modifies them, in
//! the absence of faults). Auxiliary propositions introduced by a fault
//! specification (such as `D_i`, "process i is down") are also owned by a
//! process, and are flagged as auxiliary so that tooling can distinguish
//! them from the propositions of the problem specification.

use crate::ids::PropId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Who owns (i.e. may modify, under normal operation) a proposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Owner {
    /// The proposition belongs to `AP_i` for the given 0-based process index.
    Process(usize),
    /// The proposition belongs to no process (environment-controlled).
    Env,
}

/// Error returned when registering or resolving propositions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropError {
    /// A proposition with this name is already registered.
    Duplicate(String),
    /// No proposition with this name is registered.
    Unknown(String),
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropError::Duplicate(n) => write!(f, "duplicate proposition name `{n}`"),
            PropError::Unknown(n) => write!(f, "unknown proposition name `{n}`"),
        }
    }
}

impl std::error::Error for PropError {}

/// Registry of atomic propositions: names, owners and auxiliary flags.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PropTable {
    names: Vec<String>,
    owners: Vec<Owner>,
    aux: Vec<bool>,
    by_name: HashMap<String, PropId>,
}

impl PropTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a regular (problem-specification) proposition.
    ///
    /// # Errors
    ///
    /// Returns [`PropError::Duplicate`] if the name is already taken.
    pub fn add(&mut self, name: impl Into<String>, owner: Owner) -> Result<PropId, PropError> {
        self.add_inner(name.into(), owner, false)
    }

    /// Registers an auxiliary proposition introduced by a fault
    /// specification (e.g. `broken`, `D_i`).
    ///
    /// # Errors
    ///
    /// Returns [`PropError::Duplicate`] if the name is already taken.
    pub fn add_aux(&mut self, name: impl Into<String>, owner: Owner) -> Result<PropId, PropError> {
        self.add_inner(name.into(), owner, true)
    }

    fn add_inner(&mut self, name: String, owner: Owner, aux: bool) -> Result<PropId, PropError> {
        if self.by_name.contains_key(&name) {
            return Err(PropError::Duplicate(name));
        }
        let id = PropId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.owners.push(owner);
        self.aux.push(aux);
        Ok(id)
    }

    /// Looks up a proposition by name.
    ///
    /// # Errors
    ///
    /// Returns [`PropError::Unknown`] if no proposition has this name.
    pub fn id(&self, name: &str) -> Result<PropId, PropError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| PropError::Unknown(name.to_owned()))
    }

    /// The name of a proposition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn name(&self, id: PropId) -> &str {
        &self.names[id.index()]
    }

    /// The owner of a proposition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn owner(&self, id: PropId) -> Owner {
        self.owners[id.index()]
    }

    /// Whether the proposition is auxiliary (fault-specification) state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn is_aux(&self, id: PropId) -> bool {
        self.aux[id.index()]
    }

    /// Number of registered propositions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all proposition ids in registration order.
    pub fn iter(&self) -> impl Iterator<Item = PropId> + '_ {
        (0..self.names.len() as u32).map(PropId)
    }

    /// All propositions owned by the given process, in registration order.
    pub fn props_of_process(&self, proc_index: usize) -> Vec<PropId> {
        self.iter()
            .filter(|&p| self.owner(p) == Owner::Process(proc_index))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_lookup_round_trip() {
        let mut t = PropTable::new();
        let n1 = t.add("N1", Owner::Process(0)).unwrap();
        let d1 = t.add_aux("D1", Owner::Process(0)).unwrap();
        let g = t.add("g", Owner::Env).unwrap();
        assert_eq!(t.id("N1").unwrap(), n1);
        assert_eq!(t.name(d1), "D1");
        assert!(t.is_aux(d1));
        assert!(!t.is_aux(n1));
        assert_eq!(t.owner(g), Owner::Env);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = PropTable::new();
        t.add("x", Owner::Env).unwrap();
        assert_eq!(
            t.add("x", Owner::Env),
            Err(PropError::Duplicate("x".into()))
        );
    }

    #[test]
    fn unknown_name_rejected() {
        let t = PropTable::new();
        assert_eq!(t.id("nope"), Err(PropError::Unknown("nope".into())));
    }

    #[test]
    fn process_partition() {
        let mut t = PropTable::new();
        let a = t.add("a", Owner::Process(0)).unwrap();
        let b = t.add("b", Owner::Process(1)).unwrap();
        let c = t.add("c", Owner::Process(0)).unwrap();
        assert_eq!(t.props_of_process(0), vec![a, c]);
        assert_eq!(t.props_of_process(1), vec![b]);
        assert!(t.props_of_process(2).is_empty());
    }
}
