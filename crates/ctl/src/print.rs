//! Pretty-printing of formulae, reconstructing the paper's abbreviations.
//!
//! `A[true U g]` prints as `AF g`, `A[false W g]` as `AG g`, and
//! analogously for the existential forms. Process indices are printed
//! 1-based to match the paper (`AX1`, `EX2`, …).

use crate::arena::{Formula, FormulaArena};
use crate::ids::FormulaId;
use crate::props::PropTable;
use std::fmt::Write as _;

/// Precedence levels used to minimize parentheses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Or,
    And,
    Unary,
    Atom,
}

/// Renders `f` as a string using the paper's surface syntax.
///
/// # Examples
///
/// ```
/// use ftsyn_ctl::{FormulaArena, PropTable, Owner, print::render};
///
/// let mut props = PropTable::new();
/// let t1 = props.add("T1", Owner::Process(0)).unwrap();
/// let c1 = props.add("C1", Owner::Process(0)).unwrap();
/// let mut arena = FormulaArena::new(2);
/// let (ft, fc) = (arena.prop(t1), arena.prop(c1));
/// let af = arena.af(fc);
/// let imp = arena.implies(ft, af);
/// let spec = arena.ag(imp);
/// assert_eq!(render(&arena, &props, spec), "AG(~T1 | AF C1)");
/// ```
pub fn render(arena: &FormulaArena, props: &PropTable, f: FormulaId) -> String {
    let mut s = String::new();
    go(arena, props, f, Prec::Or, &mut s);
    s
}

fn go(arena: &FormulaArena, props: &PropTable, f: FormulaId, min: Prec, out: &mut String) {
    let prec = prec_of(arena, f);
    let parens = prec < min;
    if parens {
        out.push('(');
    }
    match arena.get(f) {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Prop(p) => out.push_str(props.name(p)),
        Formula::NegProp(p) => {
            out.push('~');
            out.push_str(props.name(p));
        }
        // `&`/`|` parse right-associatively, so left children at the
        // same precedence level are parenthesized to round-trip exactly.
        Formula::And(a, b) => {
            go(arena, props, a, Prec::Unary, out);
            out.push_str(" & ");
            go(arena, props, b, Prec::And, out);
        }
        Formula::Or(a, b) => {
            go(arena, props, a, Prec::And, out);
            out.push_str(" | ");
            go(arena, props, b, Prec::Or, out);
        }
        Formula::Ax(i, g) => unary(arena, props, &format!("AX{}", i + 1), g, out),
        Formula::Ex(i, g) => unary(arena, props, &format!("EX{}", i + 1), g, out),
        Formula::Au(g, h) => {
            if arena.get(g) == Formula::True {
                unary(arena, props, "AF", h, out);
            } else {
                let _ = write!(
                    out,
                    "A[{} U {}]",
                    render(arena, props, g),
                    render(arena, props, h)
                );
            }
        }
        Formula::Eu(g, h) => {
            if arena.get(g) == Formula::True {
                unary(arena, props, "EF", h, out);
            } else {
                let _ = write!(
                    out,
                    "E[{} U {}]",
                    render(arena, props, g),
                    render(arena, props, h)
                );
            }
        }
        Formula::Aw(g, h) => {
            if arena.get(g) == Formula::False {
                unary(arena, props, "AG", h, out);
            } else {
                let _ = write!(
                    out,
                    "A[{} W {}]",
                    render(arena, props, g),
                    render(arena, props, h)
                );
            }
        }
        Formula::Ew(g, h) => {
            if arena.get(g) == Formula::False {
                unary(arena, props, "EG", h, out);
            } else {
                let _ = write!(
                    out,
                    "E[{} W {}]",
                    render(arena, props, g),
                    render(arena, props, h)
                );
            }
        }
    }
    if parens {
        out.push(')');
    }
}

fn unary(arena: &FormulaArena, props: &PropTable, op: &str, g: FormulaId, out: &mut String) {
    out.push_str(op);
    if matches!(
        arena.get(g),
        Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_)
    ) {
        out.push(' ');
        go(arena, props, g, Prec::Atom, out);
    } else {
        out.push('(');
        go(arena, props, g, Prec::Or, out);
        out.push(')');
    }
}

fn prec_of(arena: &FormulaArena, f: FormulaId) -> Prec {
    match arena.get(f) {
        Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_) => Prec::Atom,
        Formula::And(_, _) => Prec::And,
        Formula::Or(_, _) => Prec::Or,
        Formula::Ax(_, _) | Formula::Ex(_, _) => Prec::Unary,
        // The until forms are self-bracketing (or rendered as unary sugar).
        Formula::Au(_, _) | Formula::Eu(_, _) | Formula::Aw(_, _) | Formula::Ew(_, _) => {
            Prec::Unary
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::Owner;

    fn setup() -> (FormulaArena, PropTable) {
        let mut props = PropTable::new();
        props.add("p", Owner::Process(0)).unwrap();
        props.add("q", Owner::Process(1)).unwrap();
        (FormulaArena::new(2), props)
    }

    #[test]
    fn sugar_reconstructed() {
        let (mut a, props) = setup();
        let p = props.id("p").unwrap();
        let fp = a.prop(p);
        let ag = a.ag(fp);
        assert_eq!(render(&a, &props, ag), "AG p");
        let ef = a.ef(fp);
        assert_eq!(render(&a, &props, ef), "EF p");
    }

    #[test]
    fn until_brackets() {
        let (mut a, props) = setup();
        let fp = a.prop(props.id("p").unwrap());
        let fq = a.prop(props.id("q").unwrap());
        let au = a.au(fp, fq);
        assert_eq!(render(&a, &props, au), "A[p U q]");
        let ew = a.ew(fp, fq);
        assert_eq!(render(&a, &props, ew), "E[p W q]");
    }

    #[test]
    fn indexed_nexttime_one_based() {
        let (mut a, props) = setup();
        let fp = a.prop(props.id("p").unwrap());
        let ax = a.ax(0, fp);
        assert_eq!(render(&a, &props, ax), "AX1 p");
        let ex = a.ex(1, fp);
        assert_eq!(render(&a, &props, ex), "EX2 p");
    }

    #[test]
    fn parenthesization() {
        let (mut a, props) = setup();
        let fp = a.prop(props.id("p").unwrap());
        let fq = a.prop(props.id("q").unwrap());
        let or = a.or(fp, fq);
        let and = a.and(or, fq);
        assert_eq!(render(&a, &props, and), "(p | q) & q");
        let nq = a.neg_prop(props.id("q").unwrap());
        let and2 = a.and(fp, nq);
        let or2 = a.or(and2, fq);
        assert_eq!(render(&a, &props, or2), "p & ~q | q");
    }
}
