//! Typed index newtypes used across the workspace.
//!
//! All graph-like structures in this project (formula DAGs, tableaux,
//! Kripke structures) are arena-based and refer to their elements through
//! these ids rather than through references, which keeps the borrow
//! checker out of graph algorithms entirely.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an atomic proposition inside a [`PropTable`](crate::PropTable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PropId(pub u32);

/// Identifier of a formula inside a [`FormulaArena`](crate::FormulaArena).
///
/// Formulae are hash-consed, so two structurally equal formulae in the
/// same arena always have the same `FormulaId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FormulaId(pub u32);

impl PropId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FormulaId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PropId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for FormulaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", PropId(3)), "p3");
        assert_eq!(format!("{:?}", FormulaId(17)), "f17");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(PropId(1) < PropId(2));
        assert!(FormulaId(0) < FormulaId(10));
    }
}
