//! CTL logic engine for the `ftsyn` fault-tolerant synthesis workspace.
//!
//! This crate implements the temporal-logic substrate of
//! *Attie, Arora, Emerson — Synthesis of Fault-Tolerant Concurrent
//! Programs* (TOPLAS 26(1), 2004; PODC 1998):
//!
//! * hash-consed CTL formulae in positive normal form, with the paper's
//!   process-indexed nexttime modalities `AXᵢ`/`EXᵢ` ([`FormulaArena`]);
//! * the generalized Fisher–Ladner closure with pre-resolved α/β
//!   classification and dense bitset labels ([`Closure`], [`LabelSet`]);
//! * a parser and pretty-printer for the paper's surface syntax
//!   ([`parse::parse`], [`print::render`]);
//! * the canonical specification shape
//!   `init ∧ AG(global) ∧ AG(coupling)` with syntactic safety
//!   extraction ([`Spec`]).
//!
//! # Examples
//!
//! Build and inspect the paper's starvation-freedom clause for mutual
//! exclusion:
//!
//! ```
//! use ftsyn_ctl::{FormulaArena, PropTable, Owner, parse::parse, print::render};
//!
//! let mut props = PropTable::new();
//! props.add("T1", Owner::Process(0))?;
//! props.add("C1", Owner::Process(0))?;
//! let mut arena = FormulaArena::new(2);
//! let f = parse(&mut arena, &mut props, "AG(T1 -> AF C1)", false)?;
//! assert_eq!(render(&arena, &props, f), "AG(~T1 | AF C1)");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod closure;
mod ids;
mod props;
mod spec;

pub mod parse;
pub mod print;

pub use arena::{Formula, FormulaArena};
pub use closure::{Closure, ClosureEntry, ClosureIdx, EntryKind, Expansion, LabelIter, LabelSet};
pub use ids::{FormulaId, PropId};
pub use props::{Owner, PropError, PropTable};
pub use spec::Spec;
