//! Temporal specifications in the paper's canonical shape.
//!
//! A *problem specification* is `init–spec ∧ AG(global–spec)`; together
//! with a *problem-fault coupling specification* `AG(coupling–spec)` it
//! forms the temporal specification
//! `spec = init–spec ∧ AG(global–spec) ∧ AG(coupling–spec)` (Section 2.5).
//!
//! For fail-safe tolerance the safety component `global–safety–spec` of
//! the global specification must be extractable; [`Spec::global_safety`]
//! either uses a user-supplied component or extracts one syntactically
//! (the conjuncts of `global–spec` that contain no `AU`/`EU`/`AF`/`EF`
//! eventuality).

use crate::arena::FormulaArena;
use crate::ids::FormulaId;

/// A temporal specification `init ∧ AG(global) ∧ AG(coupling)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Spec {
    /// `init–spec`: propositional description of the initial state.
    pub init: FormulaId,
    /// `global–spec`: properties required at every normal state.
    pub global: FormulaId,
    /// `coupling–spec`: problem-fault coupling, required at *all* states.
    pub coupling: FormulaId,
    /// Explicit safety component of `global`, if the user supplied one.
    pub explicit_safety: Option<FormulaId>,
}

impl Spec {
    /// Creates a specification with coupling `true` (no fault coupling).
    pub fn new(arena: &mut FormulaArena, init: FormulaId, global: FormulaId) -> Spec {
        let coupling = arena.tru();
        Spec {
            init,
            global,
            coupling,
            explicit_safety: None,
        }
    }

    /// Creates a specification with a coupling component.
    pub fn with_coupling(init: FormulaId, global: FormulaId, coupling: FormulaId) -> Spec {
        Spec {
            init,
            global,
            coupling,
            explicit_safety: None,
        }
    }

    /// Sets an explicit safety component for fail-safe tolerance.
    #[must_use]
    pub fn with_safety(mut self, safety: FormulaId) -> Spec {
        self.explicit_safety = Some(safety);
        self
    }

    /// The full temporal specification
    /// `init ∧ AG(global) ∧ AG(coupling)` as a single formula.
    pub fn formula(&self, arena: &mut FormulaArena) -> FormulaId {
        let agg = arena.ag(self.global);
        let agc = arena.ag(self.coupling);
        let tail = arena.and(agg, agc);
        arena.and(self.init, tail)
    }

    /// `AG(global)` alone.
    pub fn ag_global(&self, arena: &mut FormulaArena) -> FormulaId {
        arena.ag(self.global)
    }

    /// `AG(coupling)` alone.
    pub fn ag_coupling(&self, arena: &mut FormulaArena) -> FormulaId {
        arena.ag(self.coupling)
    }

    /// The safety component `global–safety–spec` of the global
    /// specification: the explicit one if provided, otherwise the
    /// conjunction of all conjuncts of `global` free of eventualities.
    pub fn global_safety(&self, arena: &mut FormulaArena) -> FormulaId {
        if let Some(s) = self.explicit_safety {
            return s;
        }
        let safe: Vec<FormulaId> = arena
            .conjuncts(self.global)
            .into_iter()
            .filter(|&c| !arena.contains_eventuality(c))
            .collect();
        arena.and_all(safe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::print::render;
    use crate::props::PropTable;

    #[test]
    fn safety_extraction_drops_eventualities() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(2);
        let global = parse(
            &mut arena,
            &mut props,
            "~(C1 & C2) & (~T1 | AF C1) & (~N1 | AX1 T1)",
            true,
        )
        .unwrap();
        let init = parse(&mut arena, &mut props, "N1", true).unwrap();
        let spec = Spec::new(&mut arena, init, global);
        let safety = spec.global_safety(&mut arena);
        let txt = render(&arena, &props, safety);
        assert!(!txt.contains("AF"), "no eventualities in {txt}");
        assert!(txt.contains("~C1 | ~C2"));
        assert!(txt.contains("AX1 T1"));
    }

    #[test]
    fn explicit_safety_wins() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(1);
        let g = parse(&mut arena, &mut props, "p", true).unwrap();
        let init = arena.tru();
        let s = parse(&mut arena, &mut props, "q", true).unwrap();
        let spec = Spec::new(&mut arena, init, g).with_safety(s);
        assert_eq!(spec.global_safety(&mut arena), s);
    }

    #[test]
    fn formula_shape() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(1);
        let init = parse(&mut arena, &mut props, "p", true).unwrap();
        let global = parse(&mut arena, &mut props, "q", true).unwrap();
        let spec = Spec::new(&mut arena, init, global);
        let f = spec.formula(&mut arena);
        // coupling is true so AG(coupling) = AG true, kept as written.
        let txt = render(&arena, &props, f);
        assert_eq!(txt, "p & AG q & AG true");
    }
}
