//! The generalized Fisher–Ladner closure and dense label sets.
//!
//! The decision procedure works with node labels that are subsets of
//! `cl(f₀)` (Definition 4.1 of the paper). For efficiency we compute the
//! closure once, assign every member a dense index, and represent labels
//! as bitsets ([`LabelSet`]) over those indices. Each closure member also
//! carries its pre-resolved α/β classification ([`EntryKind`]) so the
//! tableau's `Blocks` expansion never needs to re-classify or mutate the
//! formula arena.
//!
//! Beyond Definition 4.1, the closure here also contains:
//!
//! * the α-/β-expansion *companion* formulae (e.g. `g ∧ AX A[gUh]` for
//!   `A[gUh]`, with `AX` desugared to a conjunction over process-indexed
//!   `AXᵢ`), because those composites appear verbatim in node labels
//!   during `Blocks` expansion;
//! * both literals `p`/`¬p` of every registered atomic proposition, so
//!   fault-successor OR-nodes can pin a complete valuation (Def. 5.1.1);
//! * `EXᵢ true` for every process, used by the `Tiles` special case that
//!   splits a node with `AX` formulae but no `EX` formulae.

use crate::arena::{Formula, FormulaArena};
use crate::ids::{FormulaId, PropId};
use crate::props::PropTable;
use std::collections::HashMap;

/// Dense index of a formula within a [`Closure`].
pub type ClosureIdx = u32;

/// Pre-resolved classification of a closure member.
///
/// `Alpha`-classified formulae (`∧`, `AW`, `EW`) are satisfied by
/// satisfying both components; `Beta`-classified ones (`∨`, `AU`, `EU`)
/// by satisfying either component. Components are stored as closure
/// indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// The constant `true`.
    True,
    /// The constant `false` (propositionally inconsistent on its own).
    False,
    /// A literal over `prop`, positive or negative.
    Lit {
        /// The proposition.
        prop: PropId,
        /// `true` for `p`, `false` for `¬p`.
        positive: bool,
    },
    /// Conjunction — α with components `a`, `b`.
    And {
        /// First conjunct.
        a: ClosureIdx,
        /// Second conjunct.
        b: ClosureIdx,
    },
    /// Disjunction — β with components `a`, `b`.
    Or {
        /// First disjunct.
        a: ClosureIdx,
        /// Second disjunct.
        b: ClosureIdx,
    },
    /// `AXᵢ body` — elementary.
    Ax {
        /// 0-based process index.
        proc: usize,
        /// Closure index of the body.
        body: ClosureIdx,
    },
    /// `EXᵢ body` — elementary.
    Ex {
        /// 0-based process index.
        proc: usize,
        /// Closure index of the body.
        body: ClosureIdx,
    },
    /// `A[g U h]` — β with components `h` and `g ∧ AX A[gUh]`.
    Au {
        /// Closure index of `g`.
        g: ClosureIdx,
        /// Closure index of `h` (this is β₁).
        h: ClosureIdx,
        /// Closure index of `g ∧ AX A[gUh]` (this is β₂).
        beta2: ClosureIdx,
    },
    /// `E[g U h]` — β with components `h` and `g ∧ EX E[gUh]`.
    Eu {
        /// Closure index of `g`.
        g: ClosureIdx,
        /// Closure index of `h` (this is β₁).
        h: ClosureIdx,
        /// Closure index of `g ∧ EX E[gUh]` (this is β₂).
        beta2: ClosureIdx,
    },
    /// `A[g W h]` — α with components `h` and `g ∨ AX A[gWh]`.
    Aw {
        /// Closure index of `g`.
        g: ClosureIdx,
        /// Closure index of `h` (this is α₁).
        h: ClosureIdx,
        /// Closure index of `g ∨ AX A[gWh]` (this is α₂).
        alpha2: ClosureIdx,
    },
    /// `E[g W h]` — α with components `h` and `g ∨ EX E[gWh]`.
    Ew {
        /// Closure index of `g`.
        g: ClosureIdx,
        /// Closure index of `h` (this is α₁).
        h: ClosureIdx,
        /// Closure index of `g ∨ EX E[gWh]` (this is α₂).
        alpha2: ClosureIdx,
    },
}

/// How a closure member behaves during `Blocks` expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expansion {
    /// Elementary: literal, constant, or (indexed) nexttime formula.
    Elementary,
    /// α-formula: both components must be added.
    Alpha(ClosureIdx, ClosureIdx),
    /// β-formula: one of the components must be added.
    Beta(ClosureIdx, ClosureIdx),
}

/// A member of the closure: its formula id plus resolved kind.
#[derive(Clone, Copy, Debug)]
pub struct ClosureEntry {
    /// The interned formula.
    pub id: FormulaId,
    /// Resolved classification.
    pub kind: EntryKind,
}

/// The closure of a set of root formulae, with dense indexing.
#[derive(Clone, Debug)]
pub struct Closure {
    entries: Vec<ClosureEntry>,
    pos: HashMap<FormulaId, ClosureIdx>,
    /// `lit_pos[p] = (idx of p, idx of ¬p)` if both are present.
    lit_idx: HashMap<PropId, (Option<ClosureIdx>, Option<ClosureIdx>)>,
    /// `EXᵢ true` for each process, if registered.
    ex_true: Vec<ClosureIdx>,
    false_idx: ClosureIdx,
    true_idx: ClosureIdx,
    words: usize,
    /// Bits of the positive literals whose negative twin sits at the
    /// next index in the same word; a label word `w` then carries a
    /// `p ∧ ¬p` conflict iff `w & (w >> 1) & adj_pos_mask` is nonzero.
    adj_pos_mask: Box<[u64]>,
    /// Literal pairs that did not land word-adjacent (empty in practice:
    /// the builder seeds `p`/`¬p` back to back); checked one by one.
    slow_pairs: Vec<(ClosureIdx, ClosureIdx)>,
    /// `opposite_lit[i]` = closure index of the complementary literal of
    /// member `i`, or `NO_IDX` when `i` is not a literal (or has no
    /// registered complement).
    opposite_lit: Box<[ClosureIdx]>,
    /// Bits of all `AXᵢ` members.
    ax_mask: Box<[u64]>,
    /// Bits of all `EXᵢ` members.
    ex_mask: Box<[u64]>,
}

/// Sentinel for "no closure index" in dense side tables.
const NO_IDX: ClosureIdx = ClosureIdx::MAX;

impl Closure {
    /// Builds the closure of `roots` over `arena`.
    ///
    /// All literals of every proposition in `props` and `EXᵢ true` for
    /// every process are included in addition to `cl(roots)`; see the
    /// module docs for why.
    ///
    /// The arena is mutated: expansion companion formulae are interned.
    pub fn build(arena: &mut FormulaArena, props: &PropTable, roots: &[FormulaId]) -> Closure {
        // Phase 1: collect the set of closure formula ids (fixpoint).
        let mut seen: HashMap<FormulaId, ClosureIdx> = HashMap::new();
        let mut order: Vec<FormulaId> = Vec::new();
        let mut work: Vec<FormulaId> = Vec::new();

        let push = |f: FormulaId,
                        seen: &mut HashMap<FormulaId, ClosureIdx>,
                        order: &mut Vec<FormulaId>,
                        work: &mut Vec<FormulaId>| {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(f) {
                e.insert(order.len() as ClosureIdx);
                order.push(f);
                work.push(f);
            }
        };

        // Seed with constants, all literals, EXᵢ true, and the roots.
        let t = arena.tru();
        let fl = arena.fls();
        push(t, &mut seen, &mut order, &mut work);
        push(fl, &mut seen, &mut order, &mut work);
        for p in props.iter() {
            let pos = arena.prop(p);
            let neg = arena.neg_prop(p);
            push(pos, &mut seen, &mut order, &mut work);
            push(neg, &mut seen, &mut order, &mut work);
        }
        let mut ex_true_ids = Vec::new();
        for i in 0..arena.num_procs() {
            let e = arena.ex(i, t);
            ex_true_ids.push(e);
            push(e, &mut seen, &mut order, &mut work);
        }
        for &r in roots {
            push(r, &mut seen, &mut order, &mut work);
        }

        while let Some(f) = work.pop() {
            match arena.get(f) {
                Formula::True | Formula::False | Formula::Prop(_) | Formula::NegProp(_) => {}
                Formula::And(a, b) | Formula::Or(a, b) => {
                    push(a, &mut seen, &mut order, &mut work);
                    push(b, &mut seen, &mut order, &mut work);
                }
                Formula::Ax(_, b) | Formula::Ex(_, b) => {
                    push(b, &mut seen, &mut order, &mut work);
                }
                Formula::Au(g, h) => {
                    let nxt = arena.ax_all(f);
                    let beta2 = arena.and(g, nxt);
                    push(g, &mut seen, &mut order, &mut work);
                    push(h, &mut seen, &mut order, &mut work);
                    push(beta2, &mut seen, &mut order, &mut work);
                }
                Formula::Eu(g, h) => {
                    let nxt = arena.ex_all(f);
                    let beta2 = arena.and(g, nxt);
                    push(g, &mut seen, &mut order, &mut work);
                    push(h, &mut seen, &mut order, &mut work);
                    push(beta2, &mut seen, &mut order, &mut work);
                }
                Formula::Aw(g, h) => {
                    let nxt = arena.ax_all(f);
                    let alpha2 = arena.or(g, nxt);
                    push(g, &mut seen, &mut order, &mut work);
                    push(h, &mut seen, &mut order, &mut work);
                    push(alpha2, &mut seen, &mut order, &mut work);
                }
                Formula::Ew(g, h) => {
                    let nxt = arena.ex_all(f);
                    let alpha2 = arena.or(g, nxt);
                    push(g, &mut seen, &mut order, &mut work);
                    push(h, &mut seen, &mut order, &mut work);
                    push(alpha2, &mut seen, &mut order, &mut work);
                }
            }
        }

        // Phase 2: resolve kinds. All components are guaranteed present.
        let pos: HashMap<FormulaId, ClosureIdx> = seen;
        let idx_of = |f: FormulaId| -> ClosureIdx { *pos.get(&f).expect("closure is closed") };
        let mut entries = Vec::with_capacity(order.len());
        let mut lit_idx: HashMap<PropId, (Option<ClosureIdx>, Option<ClosureIdx>)> =
            HashMap::new();
        for (i, &f) in order.iter().enumerate() {
            let kind = match arena.get(f) {
                Formula::True => EntryKind::True,
                Formula::False => EntryKind::False,
                Formula::Prop(p) => {
                    lit_idx.entry(p).or_default().0 = Some(i as ClosureIdx);
                    EntryKind::Lit {
                        prop: p,
                        positive: true,
                    }
                }
                Formula::NegProp(p) => {
                    lit_idx.entry(p).or_default().1 = Some(i as ClosureIdx);
                    EntryKind::Lit {
                        prop: p,
                        positive: false,
                    }
                }
                Formula::And(a, b) => EntryKind::And {
                    a: idx_of(a),
                    b: idx_of(b),
                },
                Formula::Or(a, b) => EntryKind::Or {
                    a: idx_of(a),
                    b: idx_of(b),
                },
                Formula::Ax(i, b) => EntryKind::Ax {
                    proc: i,
                    body: idx_of(b),
                },
                Formula::Ex(i, b) => EntryKind::Ex {
                    proc: i,
                    body: idx_of(b),
                },
                Formula::Au(g, h) => {
                    let nxt = arena.ax_all(f);
                    let beta2 = arena.and(g, nxt);
                    EntryKind::Au {
                        g: idx_of(g),
                        h: idx_of(h),
                        beta2: idx_of(beta2),
                    }
                }
                Formula::Eu(g, h) => {
                    let nxt = arena.ex_all(f);
                    let beta2 = arena.and(g, nxt);
                    EntryKind::Eu {
                        g: idx_of(g),
                        h: idx_of(h),
                        beta2: idx_of(beta2),
                    }
                }
                Formula::Aw(g, h) => {
                    let nxt = arena.ax_all(f);
                    let alpha2 = arena.or(g, nxt);
                    EntryKind::Aw {
                        g: idx_of(g),
                        h: idx_of(h),
                        alpha2: idx_of(alpha2),
                    }
                }
                Formula::Ew(g, h) => {
                    let nxt = arena.ex_all(f);
                    let alpha2 = arena.or(g, nxt);
                    EntryKind::Ew {
                        g: idx_of(g),
                        h: idx_of(h),
                        alpha2: idx_of(alpha2),
                    }
                }
            };
            entries.push(ClosureEntry { id: f, kind });
        }

        let words = order.len().div_ceil(64).max(1);
        let false_idx = idx_of(fl);
        let true_idx = idx_of(t);
        let ex_true = ex_true_ids.into_iter().map(idx_of).collect();

        // Phase 3: dense side tables for the hot consistency checks.
        let mut adj_pos_mask = vec![0u64; words].into_boxed_slice();
        let mut slow_pairs: Vec<(ClosureIdx, ClosureIdx)> = Vec::new();
        let mut opposite_lit = vec![NO_IDX; entries.len()].into_boxed_slice();
        for &(p, n) in lit_idx.values() {
            if let (Some(pi), Some(ni)) = (p, n) {
                opposite_lit[pi as usize] = ni;
                opposite_lit[ni as usize] = pi;
                if ni == pi + 1 && pi % 64 != 63 {
                    adj_pos_mask[pi as usize / 64] |= 1u64 << (pi % 64);
                } else {
                    slow_pairs.push((pi, ni));
                }
            }
        }
        slow_pairs.sort_unstable(); // lit_idx iteration order is random
        let mut ax_mask = vec![0u64; words].into_boxed_slice();
        let mut ex_mask = vec![0u64; words].into_boxed_slice();
        for (i, e) in entries.iter().enumerate() {
            match e.kind {
                EntryKind::Ax { .. } => ax_mask[i / 64] |= 1u64 << (i % 64),
                EntryKind::Ex { .. } => ex_mask[i / 64] |= 1u64 << (i % 64),
                _ => {}
            }
        }

        Closure {
            entries,
            pos,
            lit_idx,
            ex_true,
            false_idx,
            true_idx,
            words,
            adj_pos_mask,
            slow_pairs,
            opposite_lit,
            ax_mask,
            ex_mask,
        }
    }

    /// Number of closure members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the closure is empty (never true: constants are seeded).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at a closure index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn entry(&self, idx: ClosureIdx) -> &ClosureEntry {
        &self.entries[idx as usize]
    }

    /// Closure index of a formula, if it is a member.
    pub fn index_of(&self, f: FormulaId) -> Option<ClosureIdx> {
        self.pos.get(&f).copied()
    }

    /// Closure index of `EXᵢ true`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn ex_true(&self, proc: usize) -> ClosureIdx {
        self.ex_true[proc]
    }

    /// The number of processes the closure was built for.
    pub fn num_procs(&self) -> usize {
        self.ex_true.len()
    }

    /// Closure indices of the positive/negative literal of `p`, when
    /// registered.
    pub fn literal(&self, p: PropId, positive: bool) -> Option<ClosureIdx> {
        let &(pos, neg) = self.lit_idx.get(&p)?;
        if positive {
            pos
        } else {
            neg
        }
    }

    /// The α/β expansion behaviour of a closure member.
    pub fn expansion(&self, idx: ClosureIdx) -> Expansion {
        match self.entry(idx).kind {
            EntryKind::True
            | EntryKind::False
            | EntryKind::Lit { .. }
            | EntryKind::Ax { .. }
            | EntryKind::Ex { .. } => Expansion::Elementary,
            EntryKind::And { a, b } => Expansion::Alpha(a, b),
            EntryKind::Or { a, b } => Expansion::Beta(a, b),
            EntryKind::Au { h, beta2, .. } => Expansion::Beta(h, beta2),
            EntryKind::Eu { h, beta2, .. } => Expansion::Beta(h, beta2),
            EntryKind::Aw { h, alpha2, .. } => Expansion::Alpha(h, alpha2),
            EntryKind::Ew { h, alpha2, .. } => Expansion::Alpha(h, alpha2),
        }
    }

    /// Whether the member is an eventuality (`AU` or `EU`).
    pub fn is_eventuality(&self, idx: ClosureIdx) -> bool {
        matches!(
            self.entry(idx).kind,
            EntryKind::Au { .. } | EntryKind::Eu { .. }
        )
    }

    /// An empty label set sized for this closure.
    pub fn empty_label(&self) -> LabelSet {
        LabelSet {
            bits: vec![0u64; self.words].into_boxed_slice(),
        }
    }

    /// Checks a label for propositional consistency: no `false`, and no
    /// `p` together with `¬p`.
    ///
    /// Complementary literals are seeded back to back by [`Closure::build`],
    /// so almost every pair is covered by one precomputed word mask
    /// (`w & (w >> 1) & adj_pos_mask`); only pairs that happen to
    /// straddle a word boundary fall back to individual bit tests.
    pub fn is_prop_consistent(&self, label: &LabelSet) -> bool {
        if label.contains(self.false_idx) {
            return false;
        }
        for (&w, &m) in label.bits.iter().zip(self.adj_pos_mask.iter()) {
            if w & (w >> 1) & m != 0 {
                return false;
            }
        }
        self.slow_pairs
            .iter()
            .all(|&(pi, ni)| !(label.contains(pi) && label.contains(ni)))
    }

    /// The complementary literal of member `idx` (`p` ↔ `¬p`), if `idx`
    /// is a literal with a registered complement.
    pub fn opposite_literal(&self, idx: ClosureIdx) -> Option<ClosureIdx> {
        match self.opposite_lit[idx as usize] {
            NO_IDX => None,
            o => Some(o),
        }
    }

    /// Whether inserting member `comp` into a *propositionally
    /// consistent* `label` would make it inconsistent: `comp` is the
    /// constant `false`, or a literal whose complement is present.
    ///
    /// O(1) — the clone-free equivalent of inserting into a copy and
    /// re-running [`Closure::is_prop_consistent`].
    pub fn insert_breaks_consistency(&self, label: &LabelSet, comp: ClosureIdx) -> bool {
        if comp == self.false_idx {
            return true;
        }
        match self.opposite_lit[comp as usize] {
            NO_IDX => false,
            o => label.contains(o),
        }
    }

    /// Whether the label contains any `AXᵢ` member (one mask pass).
    pub fn label_has_ax(&self, label: &LabelSet) -> bool {
        label
            .bits
            .iter()
            .zip(self.ax_mask.iter())
            .any(|(&w, &m)| w & m != 0)
    }

    /// Whether the label contains any `EXᵢ` member (one mask pass).
    pub fn label_has_ex(&self, label: &LabelSet) -> bool {
        label
            .bits
            .iter()
            .zip(self.ex_mask.iter())
            .any(|(&w, &m)| w & m != 0)
    }

    /// Closure index of the constant `false`.
    pub fn false_idx(&self) -> ClosureIdx {
        self.false_idx
    }

    /// Closure index of the constant `true`.
    pub fn true_idx(&self) -> ClosureIdx {
        self.true_idx
    }

    /// Iterates over all closure indices.
    pub fn indices(&self) -> std::ops::Range<ClosureIdx> {
        0..self.entries.len() as ClosureIdx
    }
}

/// A set of closure members, represented as a bitset.
///
/// Node labels in the tableau are `LabelSet`s; equality and hashing are
/// O(closure size / 64).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LabelSet {
    bits: Box<[u64]>,
}

impl LabelSet {
    /// Inserts a member; returns `true` if it was not already present.
    pub fn insert(&mut self, idx: ClosureIdx) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        let fresh = self.bits[w] & mask == 0;
        self.bits[w] |= mask;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, idx: ClosureIdx) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        self.bits[w] & (1u64 << b) != 0
    }

    /// Removes a member; returns `true` if it was present.
    pub fn remove(&mut self, idx: ClosureIdx) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        let present = self.bits[w] & mask != 0;
        self.bits[w] &= !mask;
        present
    }

    /// Adds all members of `other`.
    pub fn union_with(&mut self, other: &LabelSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// A monotone 64-bit summary: `b.is_subset(a)` implies
    /// `b.fingerprint() & !a.fingerprint() == 0`, so a failing
    /// fingerprint test refutes subset-ness in one word op without
    /// scanning the set. Each word is rotated by a word-dependent
    /// amount before folding — rotation permutes bits (preserving the
    /// per-word inclusion), while spreading different words across
    /// different positions to delay saturation.
    pub fn fingerprint(&self) -> u64 {
        self.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &w)| acc | w.rotate_left((i as u32 * 13) & 63))
    }

    /// A deterministic 64-bit hash of the set (FxHash-style word fold).
    ///
    /// Unlike the `Hash` impl, this does not depend on a per-process
    /// random seed, so it can be computed on worker threads and reused
    /// across data structures (e.g. the tableau's sharded intern table)
    /// without re-reading the label.
    pub fn stable_hash(&self) -> u64 {
        const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut h = 0u64;
        for &w in self.bits.iter() {
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        h
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> LabelIter<'_> {
        LabelIter {
            bits: &self.bits,
            word: 0,
            cur: self.bits.first().copied().unwrap_or(0),
        }
    }

    /// The raw bitset words, least-significant word first. Exposed for
    /// serialization (checkpoint blobs); pair with
    /// [`LabelSet::from_words`] to round-trip a label exactly.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reconstructs a label from raw words previously obtained via
    /// [`LabelSet::words`]. The word count must match the closure the
    /// label will be used against (i.e. `closure.empty_label().words().len()`);
    /// the caller is responsible for that invariant — labels with a
    /// mismatched width panic on the first set operation against a
    /// proper-width label.
    pub fn from_words(words: Vec<u64>) -> LabelSet {
        LabelSet {
            bits: words.into_boxed_slice(),
        }
    }
}

impl std::fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`LabelSet`].
pub struct LabelIter<'a> {
    bits: &'a [u64],
    word: usize,
    cur: u64,
}

impl Iterator for LabelIter<'_> {
    type Item = ClosureIdx;

    fn next(&mut self) -> Option<ClosureIdx> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros();
                self.cur &= self.cur - 1;
                return Some((self.word * 64) as ClosureIdx + b);
            }
            self.word += 1;
            if self.word >= self.bits.len() {
                return None;
            }
            self.cur = self.bits[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::Owner;

    fn small_setup() -> (FormulaArena, PropTable, FormulaId) {
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let q = props.add("q", Owner::Process(1)).unwrap();
        let mut arena = FormulaArena::new(2);
        let fp = arena.prop(p);
        let fq = arena.prop(q);
        let af = arena.af(fq);
        let imp = arena.implies(fp, af);
        let root = arena.ag(imp);
        (arena, props, root)
    }

    #[test]
    fn closure_contains_roots_and_companions() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let ri = cl.index_of(root).expect("root in closure");
        // AG f is an Aw; its alpha2 companion must be a member.
        match cl.entry(ri).kind {
            EntryKind::Aw { alpha2, h, .. } => {
                assert!(matches!(cl.entry(h).kind, EntryKind::Or { .. }));
                // alpha2 = false ∨ AX(AG f) = AX(AG f) after simplification:
                // a conjunction of AXᵢ formulae (2 procs → And of two Ax).
                assert!(matches!(cl.entry(alpha2).kind, EntryKind::And { .. }));
            }
            k => panic!("root should be Aw, got {k:?}"),
        }
    }

    #[test]
    fn closure_size_reasonable() {
        // |cl(f)| ≤ 2|f| for the pure Fisher-Ladner closure; ours also
        // holds literals, EXᵢtrue and desugared AX/EX chains, so allow a
        // (num_procs+2)-factor slack.
        let (mut arena, props, root) = small_setup();
        let flen = arena.length(root);
        let cl = Closure::build(&mut arena, &props, &[root]);
        assert!(
            cl.len() <= 2 * flen * 4 + 2 * props.len() + 4,
            "closure of size {} too large for |f| = {}",
            cl.len(),
            flen
        );
    }

    #[test]
    fn literals_and_ex_true_registered() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        for p in props.iter() {
            assert!(cl.literal(p, true).is_some());
            assert!(cl.literal(p, false).is_some());
        }
        let e0 = cl.ex_true(0);
        assert!(matches!(
            cl.entry(e0).kind,
            EntryKind::Ex { proc: 0, .. }
        ));
    }

    #[test]
    fn prop_consistency_detection() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let p = props.id("p").unwrap();
        let mut l = cl.empty_label();
        l.insert(cl.literal(p, true).unwrap());
        assert!(cl.is_prop_consistent(&l));
        l.insert(cl.literal(p, false).unwrap());
        assert!(!cl.is_prop_consistent(&l));
    }

    #[test]
    fn mask_consistency_matches_pairwise_walk() {
        // The word-mask fast path must agree with the definitional
        // pairwise check on labels over every literal combination.
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let lits: Vec<ClosureIdx> = props
            .iter()
            .flat_map(|p| [cl.literal(p, true).unwrap(), cl.literal(p, false).unwrap()])
            .collect();
        for combo in 0u32..(1 << lits.len()) {
            let mut l = cl.empty_label();
            for (i, &idx) in lits.iter().enumerate() {
                if combo & (1 << i) != 0 {
                    l.insert(idx);
                }
            }
            let naive = !label_pairs_conflict(&cl, &props, &l);
            assert_eq!(cl.is_prop_consistent(&l), naive, "combo {combo:b}");
        }
        let mut l = cl.empty_label();
        l.insert(cl.false_idx());
        assert!(!cl.is_prop_consistent(&l), "false is always inconsistent");
    }

    fn label_pairs_conflict(cl: &Closure, props: &PropTable, l: &LabelSet) -> bool {
        props.iter().any(|p| {
            let (pi, ni) = (cl.literal(p, true).unwrap(), cl.literal(p, false).unwrap());
            l.contains(pi) && l.contains(ni)
        })
    }

    #[test]
    fn opposite_literal_and_insert_blocking() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let p = props.id("p").unwrap();
        let (pi, ni) = (cl.literal(p, true).unwrap(), cl.literal(p, false).unwrap());
        assert_eq!(cl.opposite_literal(pi), Some(ni));
        assert_eq!(cl.opposite_literal(ni), Some(pi));
        assert_eq!(cl.opposite_literal(cl.true_idx()), None);
        let mut l = cl.empty_label();
        l.insert(pi);
        assert!(cl.insert_breaks_consistency(&l, ni));
        assert!(!cl.insert_breaks_consistency(&l, pi));
        assert!(cl.insert_breaks_consistency(&l, cl.false_idx()));
        let q = props.id("q").unwrap();
        assert!(!cl.insert_breaks_consistency(&l, cl.literal(q, false).unwrap()));
    }

    #[test]
    fn ax_ex_masks_match_entry_scan() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        for idx in cl.indices() {
            let mut l = cl.empty_label();
            l.insert(idx);
            let is_ax = matches!(cl.entry(idx).kind, EntryKind::Ax { .. });
            let is_ex = matches!(cl.entry(idx).kind, EntryKind::Ex { .. });
            assert_eq!(cl.label_has_ax(&l), is_ax, "idx {idx}");
            assert_eq!(cl.label_has_ex(&l), is_ex, "idx {idx}");
        }
    }

    #[test]
    fn stable_hash_is_label_equality_compatible() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let mut a = cl.empty_label();
        let mut b = cl.empty_label();
        a.insert(3);
        a.insert(17);
        b.insert(17);
        b.insert(3);
        assert_eq!(a.stable_hash(), b.stable_hash());
        b.insert(1);
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn label_set_ops() {
        let (mut arena, props, root) = small_setup();
        let cl = Closure::build(&mut arena, &props, &[root]);
        let mut a = cl.empty_label();
        let mut b = cl.empty_label();
        assert!(a.insert(1));
        assert!(!a.insert(1));
        b.insert(2);
        b.insert(1);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.len(), 2);
        assert!(a.remove(2));
        assert!(!a.remove(2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn until_entries_expose_g_h() {
        let mut props = PropTable::new();
        let p = props.add("p", Owner::Process(0)).unwrap();
        let q = props.add("q", Owner::Process(0)).unwrap();
        let mut arena = FormulaArena::new(1);
        let fp = arena.prop(p);
        let fq = arena.prop(q);
        let au = arena.au(fp, fq);
        let cl = Closure::build(&mut arena, &props, &[au]);
        let ai = cl.index_of(au).unwrap();
        match cl.entry(ai).kind {
            EntryKind::Au { g, h, beta2 } => {
                assert_eq!(cl.entry(g).id, fp);
                assert_eq!(cl.entry(h).id, fq);
                assert!(matches!(cl.entry(beta2).kind, EntryKind::And { .. }));
                assert_eq!(cl.expansion(ai), Expansion::Beta(h, beta2));
                assert!(cl.is_eventuality(ai));
            }
            k => panic!("expected Au, got {k:?}"),
        }
    }
}
