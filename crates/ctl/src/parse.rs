//! A recursive-descent parser for the paper's CTL surface syntax.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! iff    := imp ('<->' imp)*
//! imp    := or ('->' imp)?                  (right associative)
//! or     := and ('|' and)*
//! and    := unary ('&' unary)*
//! unary  := ('~' | '!') unary
//!         | ('AX' | 'EX') digits? unary     (digits = 1-based process)
//!         | ('AF' | 'EF' | 'AG' | 'EG') unary
//!         | ('A' | 'E') '[' iff ('U' | 'W') iff ']'
//!         | '(' iff ')' | 'true' | 'false' | ident
//! ```
//!
//! Identifiers may contain letters, digits and `_`. The weak-until
//! bracket form `A[g W h]` follows the paper's convention: `h` is the
//! invariant, `g` the release (see [`FormulaArena`]).

use crate::arena::FormulaArena;
use crate::ids::FormulaId;
use crate::props::{Owner, PropTable};
use std::fmt;

/// Error produced while parsing a formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error occurred.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input`, interning the result into `arena`.
///
/// Unknown identifiers are looked up in `props`; if `auto_register` is
/// set, they are registered with [`Owner::Env`], otherwise parsing fails.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, out-of-range process
/// indices, or (without `auto_register`) unknown propositions.
///
/// # Examples
///
/// ```
/// use ftsyn_ctl::{FormulaArena, PropTable, parse::parse, print::render};
///
/// let mut props = PropTable::new();
/// let mut arena = FormulaArena::new(2);
/// let f = parse(&mut arena, &mut props, "AG(T1 -> AF C1)", true).unwrap();
/// assert_eq!(render(&arena, &props, f), "AG(~T1 | AF C1)");
/// ```
pub fn parse(
    arena: &mut FormulaArena,
    props: &mut PropTable,
    input: &str,
    auto_register: bool,
) -> Result<FormulaId, ParseError> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
        arena,
        props,
        auto_register,
    };
    let f = p.iff()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    arena: &'a mut FormulaArena,
    props: &'a mut PropTable,
    auto_register: bool,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn iff(&mut self) -> Result<FormulaId, ParseError> {
        let mut lhs = self.imp()?;
        while self.eat("<->") {
            let rhs = self.imp()?;
            lhs = self.arena.iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn imp(&mut self) -> Result<FormulaId, ParseError> {
        let lhs = self.or_expr()?;
        // Look ahead for `->` without consuming `-` of something else.
        if self.eat("->") {
            let rhs = self.imp()?;
            return Ok(self.arena.implies(lhs, rhs));
        }
        Ok(lhs)
    }

    // `|` and `&` are parsed right-associatively, matching the
    // right-nesting produced by `FormulaArena::or_all`/`and_all` and the
    // pretty-printer, so print→parse round trips are exact.
    fn or_expr(&mut self) -> Result<FormulaId, ParseError> {
        let lhs = self.and_expr()?;
        self.skip_ws();
        if self.peek() == Some(b'|') {
            self.pos += 1;
            let rhs = self.or_expr()?;
            return Ok(self.arena.or(lhs, rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<FormulaId, ParseError> {
        let lhs = self.unary()?;
        self.skip_ws();
        if self.peek() == Some(b'&') {
            self.pos += 1;
            let rhs = self.and_expr()?;
            return Ok(self.arena.and(lhs, rhs));
        }
        Ok(lhs)
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn unary(&mut self) -> Result<FormulaId, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'~') | Some(b'!') => {
                self.pos += 1;
                let g = self.unary()?;
                Ok(self.arena.not(g))
            }
            Some(b'(') => {
                self.pos += 1;
                let g = self.iff()?;
                self.expect(")")?;
                Ok(g)
            }
            _ => {
                let save = self.pos;
                let Some(word) = self.ident() else {
                    return Err(self.err("expected a formula"));
                };
                match word.as_str() {
                    "true" => Ok(self.arena.tru()),
                    "false" => Ok(self.arena.fls()),
                    "AF" => {
                        let g = self.unary()?;
                        Ok(self.arena.af(g))
                    }
                    "EF" => {
                        let g = self.unary()?;
                        Ok(self.arena.ef(g))
                    }
                    "AG" => {
                        let g = self.unary()?;
                        Ok(self.arena.ag(g))
                    }
                    "EG" => {
                        let g = self.unary()?;
                        Ok(self.arena.eg(g))
                    }
                    "A" | "E" if self.peek() == Some(b'[') => {
                        self.pos += 1;
                        let g = self.iff()?;
                        self.skip_ws();
                        let Some(mode) = self.ident() else {
                            return Err(self.err("expected `U` or `W`"));
                        };
                        let h = self.iff()?;
                        self.expect("]")?;
                        match (word.as_str(), mode.as_str()) {
                            ("A", "U") => Ok(self.arena.au(g, h)),
                            ("E", "U") => Ok(self.arena.eu(g, h)),
                            ("A", "W") => Ok(self.arena.aw(g, h)),
                            ("E", "W") => Ok(self.arena.ew(g, h)),
                            _ => Err(self.err("expected `U` or `W`")),
                        }
                    }
                    _ if word.starts_with("AX") || word.starts_with("EX") => {
                        let rest = &word[2..];
                        let g_needed = true;
                        let idx = if rest.is_empty() {
                            None
                        } else if let Ok(n) = rest.parse::<usize>() {
                            if n == 0 || n > self.arena.num_procs() {
                                return Err(self.err(format!(
                                    "process index {n} out of range 1..={}",
                                    self.arena.num_procs()
                                )));
                            }
                            Some(n - 1)
                        } else {
                            // Not a nexttime token after all (e.g. `AXE`
                            // as a proposition name): treat as identifier.
                            self.pos = save;
                            let name = self.ident().expect("ident re-read");
                            return self.prop_by_name(&name);
                        };
                        debug_assert!(g_needed);
                        let g = self.unary()?;
                        match (&word[..2], idx) {
                            ("AX", Some(i)) => Ok(self.arena.ax(i, g)),
                            ("EX", Some(i)) => Ok(self.arena.ex(i, g)),
                            ("AX", None) => Ok(self.arena.ax_all(g)),
                            ("EX", None) => Ok(self.arena.ex_all(g)),
                            _ => unreachable!(),
                        }
                    }
                    _ => self.prop_by_name(&word),
                }
            }
        }
    }

    fn prop_by_name(&mut self, name: &str) -> Result<FormulaId, ParseError> {
        match self.props.id(name) {
            Ok(p) => Ok(self.arena.prop(p)),
            Err(_) if self.auto_register => {
                let p = self
                    .props
                    .add(name.to_owned(), Owner::Env)
                    .map_err(|e| self.err(e.to_string()))?;
                Ok(self.arena.prop(p))
            }
            Err(e) => Err(self.err(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::render;

    fn roundtrip(input: &str) -> String {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(3);
        let f = parse(&mut arena, &mut props, input, true).unwrap();
        render(&arena, &props, f)
    }

    #[test]
    fn parses_paper_mutex_clauses() {
        assert_eq!(roundtrip("N1 & N2"), "N1 & N2");
        assert_eq!(
            roundtrip("AG(N1 -> (AX1 T1 & EX1 T1))"),
            "AG(~N1 | AX1 T1 & EX1 T1)"
        );
        assert_eq!(roundtrip("AG(T1 -> AF C1)"), "AG(~T1 | AF C1)");
        assert_eq!(roundtrip("AG(~(C1 & C2))"), "AG(~C1 | ~C2)");
        assert_eq!(roundtrip("AG EX true"), "AG(EX1 true | EX2 true | EX3 true)");
    }

    #[test]
    fn parses_until_brackets() {
        assert_eq!(roundtrip("A[p U q]"), "A[p U q]");
        assert_eq!(roundtrip("E[p W q]"), "E[p W q]");
    }

    #[test]
    fn negation_goes_to_pnf() {
        assert_eq!(roundtrip("~A[p U q]"), "E[~p W ~q]");
        assert_eq!(roundtrip("~AG p"), "EF ~p");
    }

    #[test]
    fn iff_desugars() {
        assert_eq!(roundtrip("p <-> q"), "(~p | q) & (~q | p)");
    }

    #[test]
    fn unknown_prop_rejected_without_auto_register() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(1);
        let r = parse(&mut arena, &mut props, "mystery", false);
        assert!(r.is_err());
    }

    #[test]
    fn out_of_range_process_rejected() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(2);
        let r = parse(&mut arena, &mut props, "AX3 p", true);
        assert!(r.unwrap_err().message.contains("out of range"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut props = PropTable::new();
        let mut arena = FormulaArena::new(1);
        let r = parse(&mut arena, &mut props, "p )", true);
        assert!(r.is_err());
    }

    #[test]
    fn precedence_and_over_or() {
        assert_eq!(roundtrip("p & q | r"), "p & q | r");
        assert_eq!(roundtrip("p | q & r"), "p | q & r");
        assert_eq!(roundtrip("(p | q) & r"), "(p | q) & r");
    }
}
