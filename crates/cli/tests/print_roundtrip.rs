//! Pretty-print / re-parse round-trip: for every shipped `.ftsyn` spec
//! file, each CTL formula of the parsed problem renders to text that
//! parses back — in the same arena — to the *identical* hash-consed
//! `FormulaId`. Equality of ids (not just of rendered strings) proves
//! printer and parser are exact inverses modulo the arena's structural
//! normalization.

use ftsyn_cli::parse_problem;
use ftsyn_ctl::parse::parse;
use ftsyn_ctl::print::render;

fn spec(name: &str) -> String {
    let path = format!("{}/../../specs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("spec file exists")
}

fn assert_roundtrip(name: &str) {
    let src = spec(name);
    let mut p = parse_problem(&src).expect("parses");
    // Synthesize first so the round-trip runs on the arena as the
    // pipeline leaves it — interning during synthesis must not disturb
    // the identity of existing formulas.
    let _ = ftsyn::synthesize(&mut p);
    for (what, f) in [
        ("init", p.spec.init),
        ("global", p.spec.global),
        ("coupling", p.spec.coupling),
    ] {
        let txt = render(&p.arena, &p.props, f);
        let back = parse(&mut p.arena, &mut p.props, &txt, false)
            .unwrap_or_else(|e| panic!("{name}: {what} re-parse failed: {e}\n{txt}"));
        assert_eq!(
            back, f,
            "{name}: {what} did not round-trip to the same FormulaId:\n{txt}"
        );
        // And the rendering itself is a fixpoint.
        assert_eq!(txt, render(&p.arena, &p.props, back), "{name}: {what}");
    }
}

#[test]
fn mutex_failstop_formulas_roundtrip() {
    assert_roundtrip("mutex_failstop.ftsyn");
}

#[test]
fn reset_task_formulas_roundtrip() {
    assert_roundtrip("reset_task.ftsyn");
}
