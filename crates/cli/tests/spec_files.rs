//! The shipped `.ftsyn` specification files parse and synthesize.

use ftsyn::{synthesize, SynthesisOutcome};
use ftsyn_cli::parse_problem;

fn spec(name: &str) -> String {
    let path = format!("{}/../../specs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("spec file exists")
}

#[test]
fn mutex_failstop_file_solves_and_verifies() {
    let mut p = parse_problem(&spec("mutex_failstop.ftsyn")).expect("parses");
    assert_eq!(p.faults.len(), 8);
    let s = synthesize(&mut p).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert_eq!(s.program.processes.len(), 2);
    // Identical to the programmatic builder's outcome.
    let mut builder = ftsyn::problems::mutex::with_fail_stop(2, ftsyn::Tolerance::Masking);
    let s2 = synthesize(&mut builder).unwrap_solved();
    assert_eq!(s.stats.model_states, s2.stats.model_states);
}

#[test]
fn reset_task_file_solves_under_fault_prone_mode() {
    let mut p = parse_problem(&spec("reset_task.ftsyn")).expect("parses");
    assert_eq!(p.mode, ftsyn::CertMode::FaultProne);
    let s = synthesize(&mut p).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
}

#[test]
fn unbounded_reset_variant_is_impossible() {
    let unbounded = spec("reset_task.ftsyn").replace("try & ~cnt0", "try");
    let mut p = parse_problem(&unbounded).expect("parses");
    assert!(matches!(
        synthesize(&mut p),
        SynthesisOutcome::Impossible(_)
    ));
}
