//! Crash-recovery conformance against the *real* `ftsyn serve`
//! binary: fail-stop it at seeded crash points (`FTSYN_CRASH_POINT`)
//! and with genuine SIGKILL, restart it against the same
//! `--checkpoint-dir`, and assert the resumed outcomes are
//! byte-identical to uninterrupted runs across the 1/2/8 thread
//! matrix. Also smoke-tests the admission governor end to end: a
//! saturated daemon sheds with structured `overloaded` replies and
//! loses no request.

use ftsyn::SynthesisOutcome;
use ftsyn_service::json::{self, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_ftsyn");
const PROBLEM: &str = "mutex2-failstop-masking";
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ftsyn-crashsim-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spawn_daemon(dir: &Path, extra_args: &[&str], crash_point: Option<&str>) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.arg("serve")
        .arg("--checkpoint-dir")
        .arg(dir)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("FTSYN_CRASH_POINT");
    if let Some(point) = crash_point {
        cmd.env("FTSYN_CRASH_POINT", point);
    }
    cmd.spawn().expect("spawn ftsyn serve")
}

/// One whole daemon life: feed `input`, close stdin, wait for exit.
/// Returns (success, stdout lines as id→parsed object, raw stderr).
fn daemon_session(
    dir: &Path,
    extra_args: &[&str],
    crash_point: Option<&str>,
    input: &str,
) -> (bool, HashMap<String, Value>, String) {
    let mut child = spawn_daemon(dir, extra_args, crash_point);
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("write daemon stdin");
    let out = child.wait_with_output().expect("wait for daemon");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut replies = HashMap::new();
    for line in stdout.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"));
        let id = v.get("id").and_then(Value::as_str).unwrap().to_owned();
        replies.insert(id, v);
    }
    (
        out.status.success(),
        replies,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn status_of<'v>(replies: &'v HashMap<String, Value>, id: &str) -> &'v str {
    replies
        .get(id)
        .unwrap_or_else(|| panic!("no reply for {id}"))
        .get("status")
        .and_then(Value::as_str)
        .unwrap()
}

/// The program an uninterrupted in-process run produces — the
/// byte-identity baseline for every resumed daemon outcome.
fn direct_program() -> String {
    let mut problem = ftsyn_service::corpus::problem(PROBLEM).unwrap();
    match ftsyn::synthesize(&mut problem) {
        SynthesisOutcome::Solved(s) => {
            assert!(s.verification.ok());
            s.program.display(&problem.props).to_string()
        }
        other => panic!("direct run did not solve: {other:?}"),
    }
}

fn aborting_request(id: &str, threads: usize) -> String {
    format!(
        "{{\"id\":\"{id}\",\"op\":\"synthesize\",\"problem\":\"{PROBLEM}\",\
         \"threads\":{threads},\"budget\":{{\"max_states\":12}}}}\n"
    )
}

/// Restarts against `dir` and resumes checkpoint `from`; asserts the
/// listing offers it and the resumed program matches `expected`.
fn assert_restart_resumes(dir: &Path, from: &str, threads: usize, expected: &str) {
    let input = format!(
        "{{\"id\":\"ls\",\"op\":\"list-checkpoints\"}}\n\
         {{\"id\":\"r2\",\"op\":\"resume\",\"from\":\"{from}\",\"threads\":{threads}}}\n\
         {{\"id\":\"end\",\"op\":\"shutdown\"}}\n"
    );
    let (ok, replies, stderr) = daemon_session(dir, &[], None, &input);
    assert!(ok, "restarted daemon exited abnormally: {stderr}");
    assert!(
        stderr.contains(&format!("recovered checkpoint \"{from}\"")),
        "recovery report missing from stderr: {stderr}"
    );
    let listing = replies.get("ls").unwrap();
    assert_eq!(status_of(&replies, "ls"), "checkpoints");
    let listing = listing.get("checkpoints").unwrap();
    let Value::Arr(rows) = listing else {
        panic!("checkpoints is not an array: {listing:?}")
    };
    assert_eq!(rows.len(), 1, "exactly the crashed checkpoint is offered");
    assert_eq!(rows[0].get("id").and_then(Value::as_str), Some(from));
    assert_eq!(
        rows[0].get("source").and_then(Value::as_str),
        Some(format!("corpus:{PROBLEM}").as_str())
    );
    assert_eq!(status_of(&replies, "r2"), "solved");
    assert_eq!(
        replies["r2"].get("program").and_then(Value::as_str),
        Some(expected),
        "threads={threads}: resumed program is not byte-identical"
    );
}

/// Crash after the checkpoint is fully committed (the window between
/// durability and the abort reply): the restarted daemon re-offers it
/// and the resume is byte-identical at every thread count.
#[test]
fn crash_after_commit_resumes_byte_identically_across_thread_matrix() {
    let expected = direct_program();
    for threads in THREAD_MATRIX {
        let scratch = Scratch::new("commit");
        let (ok, replies, stderr) = daemon_session(
            &scratch.0,
            &[],
            Some("ckpt-store-complete"),
            &aborting_request("r1", threads),
        );
        assert!(!ok, "the seeded crash point must fail-stop the daemon");
        assert!(
            stderr.contains("fail-stop at ckpt-store-complete"),
            "missing injection marker: {stderr}"
        );
        assert!(
            !replies.contains_key("r1"),
            "the daemon died before it could reply"
        );
        assert_restart_resumes(&scratch.0, "r1", threads, &expected);
    }
}

/// Crash before the record's rename: only a tmp file exists, which the
/// next life sweeps. Nothing is offered — and nothing is corrupt.
#[test]
fn crash_before_rename_leaves_a_clean_recoverable_store() {
    let scratch = Scratch::new("pre-rename");
    let (ok, _, _) = daemon_session(
        &scratch.0,
        &[],
        Some("ckpt-blob-pre-rename"),
        &aborting_request("r1", 2),
    );
    assert!(!ok);

    let input = format!(
        "{{\"id\":\"ls\",\"op\":\"list-checkpoints\"}}\n\
         {{\"id\":\"s\",\"op\":\"synthesize\",\"problem\":\"{PROBLEM}\",\"threads\":2}}\n"
    );
    let (ok, replies, stderr) = daemon_session(&scratch.0, &[], None, &input);
    assert!(ok, "restart failed: {stderr}");
    assert!(
        !stderr.contains("quarantined"),
        "a clean tmp sweep is not damage: {stderr}"
    );
    let Value::Arr(rows) = replies["ls"].get("checkpoints").unwrap() else {
        panic!()
    };
    assert!(rows.is_empty(), "a half-written checkpoint is never offered");
    assert_eq!(status_of(&replies, "s"), "solved", "daemon fully functional");
}

/// Crash between the blob rename and the index rewrite: the record is
/// an orphan the index never committed. Recovery adopts it and the
/// resume is still byte-identical.
#[test]
fn crash_between_blob_and_index_adopts_the_orphan() {
    let expected = direct_program();
    let scratch = Scratch::new("orphan");
    let (ok, _, _) = daemon_session(
        &scratch.0,
        &[],
        Some("ckpt-blob-durable"),
        &aborting_request("r1", 2),
    );
    assert!(!ok);
    assert_restart_resumes(&scratch.0, "r1", 2, &expected);
}

/// A torn record (truncated write from a dead filesystem, simulated by
/// seeding garbage under a record name) is quarantined with a
/// structured reason — never a crash, never silently accepted.
#[test]
fn torn_records_are_quarantined_not_fatal() {
    let scratch = Scratch::new("torn");
    std::fs::create_dir_all(&scratch.0).unwrap();
    let torn = scratch.0.join("ckpt-0000000000000001.blob");
    std::fs::write(&torn, b"FTSYNSTO then pure garbage").unwrap();

    let input = format!(
        "{{\"id\":\"ls\",\"op\":\"list-checkpoints\"}}\n\
         {{\"id\":\"s\",\"op\":\"synthesize\",\"problem\":\"{PROBLEM}\",\"threads\":2}}\n"
    );
    let (ok, replies, stderr) = daemon_session(&scratch.0, &[], None, &input);
    assert!(ok, "a torn record must not kill startup: {stderr}");
    assert!(
        stderr.contains("quarantined ckpt-0000000000000001.blob"),
        "structured quarantine report missing: {stderr}"
    );
    let Value::Arr(rows) = replies["ls"].get("checkpoints").unwrap() else {
        panic!()
    };
    assert!(rows.is_empty(), "torn records are never offered");
    assert_eq!(status_of(&replies, "s"), "solved");
    assert!(
        scratch.0.join("quarantine").join("ckpt-0000000000000001.blob").is_file(),
        "the torn record was moved aside for post-mortem"
    );
}

/// A real SIGKILL between requests: the first life parks a durable
/// checkpoint and answers, then dies without any shutdown handshake.
/// The next life resumes byte-identically.
#[test]
fn sigkill_between_requests_preserves_the_parked_checkpoint() {
    let expected = direct_program();
    let scratch = Scratch::new("kill9");
    let mut child = spawn_daemon(&scratch.0, &[], None);
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    stdin.write_all(aborting_request("r1", 2).as_bytes()).unwrap();
    stdin.flush().unwrap();
    let mut reply = String::new();
    stdout.read_line(&mut reply).unwrap();
    let v = json::parse(&reply).unwrap();
    assert_eq!(v.get("status").and_then(Value::as_str), Some("aborted"));
    assert_eq!(v.get("resumable"), Some(&Value::Bool(true)));
    // No shutdown, no drain: the daemon is simply killed.
    child.kill().unwrap();
    child.wait().unwrap();
    assert_restart_resumes(&scratch.0, "r1", 2, &expected);
}

/// A real SIGKILL mid-build (no budget, no abort, nothing parked): the
/// next life recovers an empty store and serves normally — the crash
/// cost is only the lost work, never a wedged daemon.
#[test]
fn sigkill_mid_build_restarts_cleanly() {
    let scratch = Scratch::new("kill9-midbuild");
    let mut child = spawn_daemon(&scratch.0, &[], None);
    let mut stdin = child.stdin.take().unwrap();
    stdin
        .write_all(
            b"{\"id\":\"big\",\"op\":\"synthesize\",\
              \"problem\":\"mutex4-failstop-masking\",\"threads\":2}\n",
        )
        .unwrap();
    stdin.flush().unwrap();
    // Give the build time to actually start before the kill.
    std::thread::sleep(Duration::from_millis(300));
    child.kill().unwrap();
    child.wait().unwrap();

    let input = format!(
        "{{\"id\":\"ls\",\"op\":\"list-checkpoints\"}}\n\
         {{\"id\":\"s\",\"op\":\"synthesize\",\"problem\":\"{PROBLEM}\",\"threads\":2}}\n"
    );
    let (ok, replies, stderr) = daemon_session(&scratch.0, &[], None, &input);
    assert!(ok, "restart after SIGKILL failed: {stderr}");
    let Value::Arr(rows) = replies["ls"].get("checkpoints").unwrap() else {
        panic!()
    };
    assert!(rows.is_empty(), "an unaborted build parks nothing");
    assert_eq!(status_of(&replies, "s"), "solved");
}

/// Overload smoke against the real binary: a 1-slot governor with no
/// queue sheds pipelined extra requests with structured `overloaded`
/// replies, answers every single id (zero lost), and never runs a
/// request twice.
#[test]
fn saturated_daemon_sheds_structured_and_loses_no_request() {
    let scratch = Scratch::new("overload");
    // The first request is slow enough to hold the slot while the
    // pipelined rest arrive.
    let mut input = String::from(
        "{\"id\":\"w0\",\"op\":\"synthesize\",\
         \"problem\":\"mutex3-failstop-masking\",\"threads\":2}\n",
    );
    for i in 1..6 {
        input.push_str(&format!(
            "{{\"id\":\"w{i}\",\"op\":\"synthesize\",\
             \"problem\":\"{PROBLEM}\",\"threads\":1}}\n"
        ));
    }
    input.push_str("{\"id\":\"end\",\"op\":\"shutdown\"}\n");
    let (ok, replies, stderr) = daemon_session(&scratch.0, &["--slots", "1"], None, &input);
    assert!(ok, "daemon exited abnormally: {stderr}");

    let mut solved = 0;
    let mut overloaded = 0;
    for i in 0..6 {
        match status_of(&replies, &format!("w{i}")) {
            "solved" => solved += 1,
            "overloaded" => {
                overloaded += 1;
                let hint = replies[&format!("w{i}")]
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .unwrap();
                assert!(hint >= 1, "shed replies carry a retry hint");
            }
            other => panic!("w{i}: unexpected status {other}"),
        }
    }
    assert_eq!(solved + overloaded, 6, "zero requests lost");
    assert!(solved >= 1, "the slot holder itself always runs");
    assert!(
        overloaded >= 1,
        "with one slot and six pipelined requests, shedding must kick in"
    );
    assert_eq!(status_of(&replies, "end"), "shutting-down");
    assert_eq!(
        replies["end"].get("mode").and_then(Value::as_str),
        Some("graceful")
    );
}
