//! Problem-description files for the `ftsyn` command line.
//!
//! A `.ftsyn` file declares the processes, propositions, specification,
//! fault actions and required tolerance of a synthesis problem in a
//! line-oriented format:
//!
//! ```text
//! # Two-process mutual exclusion under fail-stop failures.
//! processes 2
//!
//! props P1: N1 T1 C1
//! aux   P1: D1
//! props P2: N2 T2 C2
//! aux   P2: D2
//!
//! init: N1 & N2
//! global: N1 -> (AX1 T1 & EX1 T1)
//! global: T1 -> AF C1
//! coupling: D1 <-> ~(N1 | T1 | C1)
//! coupling: D1 -> EG D1
//!
//! fault fail-P1: ~D1 -> D1 := true, N1 := false, T1 := false, C1 := false
//! fault repair-P1-N: D1 -> D1 := false, N1 := true
//!
//! tolerance masking            # uniform; or per fault:
//! tolerance fail-P1 = masking
//! mode fault-free              # or fault-prone (Section 8.3)
//! ```
//!
//! * `props Pk: a b c` registers propositions owned by (1-based) process
//!   `k`; `aux` registers auxiliary (fault-specification) propositions.
//! * `init:` / `global:` / `coupling:` lines hold CTL in the paper's
//!   surface syntax; multiple lines of the same kind are conjoined.
//!   `global:` and `coupling:` lines are implicitly wrapped in `AG`.
//! * `fault NAME: GUARD -> ASSIGNMENTS` declares a fault action. The
//!   guard is propositional; assignments are `prop := true|false|?`
//!   (the `?` is the paper's nondeterministic choice).
//! * `tolerance` is `masking`, `nonmasking` or `failsafe`, either
//!   uniform or per fault name (multitolerance).

use ftsyn::ctl::{parse::parse, Formula, FormulaArena, FormulaId, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{Budget, Engine, SynthesisProblem, Tolerance, ToleranceAssignment};
use std::fmt;
use std::time::Duration;

/// The `ftsyn` usage banner, including the documented exit codes.
pub const USAGE: &str = "\
USAGE: ftsyn <problem.ftsyn> [--engine tableau|cegis] [--dot <out.dot>]
             [--quiet] [--no-program]
             [--timeout <secs>] [--max-states <n>] [--max-minimize-attempts <n>]
             [--minimize-threads <n>] [--checkpoint <out.ckpt>] [--resume <in.ckpt>]
       ftsyn serve [--checkpoint-dir <dir>] [--slots <n>] [--queue <n>]
             [--cache-max-entries <n>] [--cache-max-bytes <n>]

  --engine <name>   synthesis backend: `tableau` (default; the paper's
                    deletion pipeline) or `cegis` (bounded guess-verify
                    enumeration, cross-checked by the same oracle).
                    Both report the same exit codes; checkpoint/resume
                    is tableau-only
  --dot <out.dot>   write the synthesized model as Graphviz DOT
  --quiet           suppress statistics and verification output
  --no-program      do not print the extracted program
  --timeout <secs>  abort if synthesis exceeds the wall-clock deadline
  --max-states <n>  abort once the tableau reaches n nodes
  --max-minimize-attempts <n>
                    abort after n candidate-merge verifications during
                    semantic minimization
  --minimize-threads <n>
                    worker threads for semantic-minimization candidate
                    scans (default: the build thread count). The
                    minimized model is byte-identical for every value;
                    the flag only redistributes verification work
  --checkpoint <out.ckpt>
                    when a budget abort interrupts the tableau build,
                    write a resumable checkpoint blob to this path
                    (the run still exits 4)
  --resume <in.ckpt>
                    continue a checkpointed build under the new budget
                    instead of starting over. The problem file must be
                    the one that produced the checkpoint: the blob pins
                    a format version and a spec fingerprint, and a
                    mismatch is a structured refusal (exit 2). The
                    resumed run is byte-identical to an uninterrupted
                    one

The serve form runs the synthesis daemon: one JSON request per stdin
line ({\"id\", \"op\": synthesize|resume|cancel|list-checkpoints|
shutdown, ...}), one JSON response per stdout line, with an expansion
cache shared across requests and budget aborts parked as resumable
checkpoints. Budgets and thread counts are per-request protocol
fields; the daemon itself takes:

  --checkpoint-dir <dir>
                    persist checkpoints in <dir> (created if missing)
                    so they survive a daemon crash: on startup the
                    directory is recovered, validated checkpoints are
                    re-offered (see the list-checkpoints op) and
                    damaged files are quarantined under <dir>/quarantine
                    with the recovery report on stderr. An unusable
                    directory is a startup error (exit 2)
  --slots <n>       admit at most n concurrently running requests
                    (default: unlimited)
  --queue <n>       let up to n requests wait for a slot; beyond that
                    requests are shed with a structured `overloaded`
                    response and a retry_after_ms hint (default: 0)
  --cache-max-entries <n>, --cache-max-bytes <n>
                    cap each expansion-cache partition; oldest-admitted
                    entries are evicted first (default: unlimited)

Budget aborts are structured: the run stops at the next poll point and
reports the phase, the limit that tripped, and the partial statistics.
The state/attempt caps abort at deterministic work counters (the same
point at every thread count); only --timeout is wall-clock.

Exit codes:
  0  synthesis succeeded and the program verified
  1  impossible: no program satisfies the specification with the
     required tolerance
  2  usage, file, problem-description or checkpoint error
  3  a program was synthesized but mechanical verification failed
  4  aborted: a budget was exceeded before synthesis finished";

/// Parsed command line of the `ftsyn` binary.
#[derive(Debug, PartialEq, Eq)]
pub struct CliArgs {
    /// The problem-description file.
    pub file: String,
    /// `--dot <path>`: where to write the model as Graphviz DOT.
    pub dot_out: Option<String>,
    /// `--quiet`: suppress statistics and verification output.
    pub quiet: bool,
    /// Absent `--no-program`: print the extracted program.
    pub show_program: bool,
    /// Resource budget from `--timeout` / `--max-states` /
    /// `--max-minimize-attempts` (unlimited when none given).
    pub budget: Budget,
    /// `--minimize-threads <n>`: worker threads for the minimization
    /// candidate scan (`None` = follow the build thread count).
    pub minimize_threads: Option<usize>,
    /// `--checkpoint <path>`: where to write the resumable checkpoint
    /// blob if a budget abort interrupts the tableau build.
    pub checkpoint_out: Option<String>,
    /// `--resume <path>`: checkpoint blob to continue from instead of
    /// building from scratch.
    pub resume: Option<String>,
    /// `--engine <name>`: which synthesis backend to run.
    pub engine: Engine,
}

/// Parsed options of the `ftsyn serve` daemon form.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ServeArgs {
    /// `--checkpoint-dir <dir>`: durable checkpoint store directory.
    pub checkpoint_dir: Option<String>,
    /// `--slots <n>`: concurrently running requests (`None` =
    /// unlimited).
    pub slots: Option<usize>,
    /// `--queue <n>`: requests allowed to wait for a slot before load
    /// shedding begins (default 0).
    pub queue: usize,
    /// `--cache-max-entries <n>`: per-partition expansion-cache entry
    /// cap.
    pub cache_max_entries: Option<usize>,
    /// `--cache-max-bytes <n>`: per-partition expansion-cache byte cap.
    pub cache_max_bytes: Option<usize>,
}

/// What the command line asks for: a synthesis run, the service loop,
/// or just the usage banner (`--help`/`-h`).
#[derive(Debug, PartialEq, Eq)]
pub enum CliCommand {
    /// Run synthesis with the parsed options.
    Run(Box<CliArgs>),
    /// Run the line-delimited JSON daemon on stdin/stdout.
    Serve(Box<ServeArgs>),
    /// Print [`USAGE`] and exit 0.
    Help,
}

/// Parses the binary's arguments (without the leading program name).
///
/// # Errors
///
/// Returns a usage message (exit code 2 territory) for a missing file,
/// an unknown flag, or a `--dot` that is not followed by a path — in
/// particular `--dot --quiet` is rejected rather than silently writing
/// a file named `--quiet`.
pub fn parse_args(args: &[String]) -> Result<CliCommand, String> {
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve_args(&args[1..]);
    }
    let mut file = None;
    let mut dot_out = None;
    let mut quiet = false;
    let mut show_program = true;
    let mut budget = Budget::default();
    let mut minimize_threads = None;
    let mut checkpoint_out = None;
    let mut resume = None;
    let mut engine = Engine::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dot" => {
                i += 1;
                match args.get(i) {
                    None => return Err("--dot requires a path".into()),
                    Some(p) if p.starts_with("--") => {
                        return Err(format!(
                            "--dot requires a path, found flag `{p}` \
                             (use `--dot ./{p}` for a file really named `{p}`)"
                        ));
                    }
                    Some(p) => dot_out = Some(p.clone()),
                }
            }
            "--quiet" => quiet = true,
            "--no-program" => show_program = false,
            "--timeout" => {
                let v = value_of("--timeout", &mut i, args)?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout expects non-negative seconds, got `{v}`"));
                }
                budget.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--max-states" => {
                let v = value_of("--max-states", &mut i, args)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-states expects a count, got `{v}`"))?;
                budget.max_states = Some(n);
            }
            "--max-minimize-attempts" => {
                let v = value_of("--max-minimize-attempts", &mut i, args)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-minimize-attempts expects a count, got `{v}`"))?;
                budget.max_minimize_attempts = Some(n);
            }
            "--minimize-threads" => {
                let v = value_of("--minimize-threads", &mut i, args)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--minimize-threads expects a thread count, got `{v}`"))?;
                if n == 0 {
                    return Err("--minimize-threads expects at least 1 thread".into());
                }
                minimize_threads = Some(n);
            }
            "--engine" => {
                let v = value_of("--engine", &mut i, args)?;
                engine = Engine::parse(&v)
                    .ok_or_else(|| format!("unknown engine `{v}` (expected tableau or cegis)"))?;
            }
            "--checkpoint" => {
                checkpoint_out = Some(value_of("--checkpoint", &mut i, args)?);
            }
            "--resume" => {
                resume = Some(value_of("--resume", &mut i, args)?);
            }
            "--help" | "-h" => return Ok(CliCommand::Help),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let Some(file) = file else {
        return Err(USAGE.to_owned());
    };
    if engine == Engine::Cegis && (resume.is_some() || checkpoint_out.is_some()) {
        return Err(
            "--checkpoint/--resume are tableau-only (the CEGIS engine has no checkpoint format)"
                .into(),
        );
    }
    Ok(CliCommand::Run(Box::new(CliArgs {
        file,
        dot_out,
        quiet,
        show_program,
        budget,
        minimize_threads,
        checkpoint_out,
        resume,
        engine,
    })))
}

/// Fetches the value of a value-taking flag, rejecting a following
/// flag so `--max-states --quiet` errors instead of parsing garbage.
fn value_of(flag: &str, i: &mut usize, args: &[String]) -> Result<String, String> {
    *i += 1;
    match args.get(*i) {
        None => Err(format!("{flag} requires a value")),
        Some(v) if v.starts_with("--") => Err(format!("{flag} requires a value, found flag `{v}`")),
        Some(v) => Ok(v.clone()),
    }
}

/// Parses the arguments after `serve`.
fn parse_serve_args(args: &[String]) -> Result<CliCommand, String> {
    let mut serve = ServeArgs::default();
    let count_of = |flag: &str, i: &mut usize| -> Result<usize, String> {
        let v = value_of(flag, i, args)?;
        v.parse()
            .map_err(|_| format!("{flag} expects a count, got `{v}`"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint-dir" => {
                serve.checkpoint_dir = Some(value_of("--checkpoint-dir", &mut i, args)?);
            }
            "--slots" => {
                let n = count_of("--slots", &mut i)?;
                if n == 0 {
                    return Err("--slots expects at least 1 worker slot".into());
                }
                serve.slots = Some(n);
            }
            "--queue" => serve.queue = count_of("--queue", &mut i)?,
            "--cache-max-entries" => {
                serve.cache_max_entries = Some(count_of("--cache-max-entries", &mut i)?);
            }
            "--cache-max-bytes" => {
                serve.cache_max_bytes = Some(count_of("--cache-max-bytes", &mut i)?);
            }
            "--help" | "-h" => return Ok(CliCommand::Help),
            other => {
                return Err(format!(
                    "unknown serve argument `{other}` (budgets and thread \
                     counts are per-request protocol fields)"
                ));
            }
        }
        i += 1;
    }
    if serve.queue > 0 && serve.slots.is_none() {
        return Err("--queue only makes sense with --slots (unlimited slots never queue)".into());
    }
    Ok(CliCommand::Serve(Box::new(serve)))
}

/// Error while reading a problem description.
#[derive(Debug)]
pub struct FileError {
    /// 1-based line number (0 = file-level).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FileError {}

fn err(line: usize, message: impl Into<String>) -> FileError {
    FileError {
        line,
        message: message.into(),
    }
}

/// Parses a `.ftsyn` problem description into a [`SynthesisProblem`].
///
/// # Errors
///
/// Returns a [`FileError`] pinpointing the offending line.
pub fn parse_problem(input: &str) -> Result<SynthesisProblem, FileError> {
    // Pass 1: find the process count (needed before any formula parses).
    let mut n_procs = None;
    for (ln, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if let Some(rest) = line.strip_prefix("processes") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| err(ln + 1, "expected `processes <count>`"))?;
            if n == 0 {
                return Err(err(ln + 1, "at least one process is required"));
            }
            n_procs = Some(n);
        }
    }
    let n_procs = n_procs.ok_or_else(|| err(0, "missing `processes <count>` declaration"))?;

    let mut props = PropTable::new();
    let mut arena = FormulaArena::new(n_procs);
    let mut init: Vec<FormulaId> = Vec::new();
    let mut global: Vec<FormulaId> = Vec::new();
    let mut coupling: Vec<FormulaId> = Vec::new();
    let mut faults: Vec<FaultAction> = Vec::new();
    let mut uniform_tol: Option<Tolerance> = None;
    let mut per_fault_tol: Vec<(String, Tolerance)> = Vec::new();
    let mut fault_prone = false;

    // Pass 2a: register propositions (before formulas reference them).
    for (ln, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let aux = line.starts_with("aux");
        if aux || line.starts_with("props") {
            let rest = line
                .strip_prefix(if aux { "aux" } else { "props" })
                .expect("prefix checked");
            let (proc_part, names) = rest
                .split_once(':')
                .ok_or_else(|| err(ln + 1, "expected `props P<k>: name …`"))?;
            let proc_part = proc_part.trim();
            let owner = if proc_part.eq_ignore_ascii_case("env") {
                Owner::Env
            } else {
                let k: usize = proc_part
                    .trim_start_matches(['P', 'p'])
                    .parse()
                    .map_err(|_| err(ln + 1, format!("bad process `{proc_part}`")))?;
                if k == 0 || k > n_procs {
                    return Err(err(
                        ln + 1,
                        format!("process {k} out of range 1..={n_procs}"),
                    ));
                }
                Owner::Process(k - 1)
            };
            for name in names.split_whitespace() {
                let r = if aux {
                    props.add_aux(name, owner)
                } else {
                    props.add(name, owner)
                };
                r.map_err(|e| err(ln + 1, e.to_string()))?;
            }
        }
    }

    // Pass 2b: everything else.
    for (ln, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty()
            || line.starts_with("processes")
            || line.starts_with("props")
            || line.starts_with("aux")
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("init:") {
            let f = parse(&mut arena, &mut props, rest, false)
                .map_err(|e| err(ln + 1, e.to_string()))?;
            init.push(f);
        } else if let Some(rest) = line.strip_prefix("global:") {
            let f = parse(&mut arena, &mut props, rest, false)
                .map_err(|e| err(ln + 1, e.to_string()))?;
            global.push(f);
        } else if let Some(rest) = line.strip_prefix("coupling:") {
            let f = parse(&mut arena, &mut props, rest, false)
                .map_err(|e| err(ln + 1, e.to_string()))?;
            coupling.push(f);
        } else if let Some(rest) = line.strip_prefix("fault") {
            faults.push(parse_fault(ln + 1, rest, &mut arena, &mut props)?);
        } else if let Some(rest) = line.strip_prefix("tolerance") {
            let rest = rest.trim();
            if let Some((name, tol)) = rest.split_once('=') {
                per_fault_tol.push((name.trim().to_owned(), parse_tol(ln + 1, tol.trim())?));
            } else {
                uniform_tol = Some(parse_tol(ln + 1, rest)?);
            }
        } else if let Some(rest) = line.strip_prefix("mode") {
            match rest.trim() {
                "fault-free" => fault_prone = false,
                "fault-prone" => fault_prone = true,
                other => return Err(err(ln + 1, format!("unknown mode `{other}`"))),
            }
        } else {
            return Err(err(ln + 1, format!("unrecognized directive: `{line}`")));
        }
    }

    if init.is_empty() {
        return Err(err(0, "missing `init:`"));
    }
    if global.is_empty() {
        return Err(err(0, "missing `global:`"));
    }
    let init = arena.and_all(init);
    let global = arena.and_all(global);
    let coupling = arena.and_all(coupling);
    let spec = Spec::with_coupling(init, global, coupling);
    let base_tol = uniform_tol.unwrap_or(Tolerance::Masking);
    let mut problem = SynthesisProblem::new(arena, props, spec, faults, base_tol);
    if !per_fault_tol.is_empty() {
        let mut tols = vec![base_tol; problem.faults.len()];
        for (name, tol) in per_fault_tol {
            let i = problem
                .faults
                .iter()
                .position(|f| f.name() == name)
                .ok_or_else(|| err(0, format!("tolerance for unknown fault `{name}`")))?;
            tols[i] = tol;
        }
        problem.tolerance = ToleranceAssignment::PerFault(tols);
    }
    if fault_prone {
        problem = problem.with_fault_prone_correctness();
    }
    Ok(problem)
}

fn strip_comment(raw: &str) -> &str {
    match raw.find('#') {
        Some(i) => raw[..i].trim(),
        None => raw.trim(),
    }
}

fn parse_tol(line: usize, s: &str) -> Result<Tolerance, FileError> {
    match s.to_ascii_lowercase().as_str() {
        "masking" => Ok(Tolerance::Masking),
        "nonmasking" => Ok(Tolerance::Nonmasking),
        "failsafe" | "fail-safe" => Ok(Tolerance::FailSafe),
        other => Err(err(line, format!("unknown tolerance `{other}`"))),
    }
}

/// Parses `NAME: GUARD -> assign, assign, …`.
fn parse_fault(
    line: usize,
    rest: &str,
    arena: &mut FormulaArena,
    props: &mut PropTable,
) -> Result<FaultAction, FileError> {
    let (name, body) = rest
        .split_once(':')
        .ok_or_else(|| err(line, "expected `fault NAME: guard -> assignments`"))?;
    let name = name.trim();
    let (guard_src, assigns_src) = body
        .split_once("->")
        .ok_or_else(|| err(line, "expected `guard -> assignments`"))?;
    let guard_f = parse(arena, props, guard_src, false).map_err(|e| err(line, e.to_string()))?;
    let guard = formula_to_boolexpr(arena, guard_f)
        .ok_or_else(|| err(line, "fault guards must be propositional"))?;
    let mut assigns = Vec::new();
    for part in assigns_src.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (lhs, rhs) = part
            .split_once(":=")
            .ok_or_else(|| err(line, format!("expected `prop := value` in `{part}`")))?;
        let p = props.id(lhs.trim()).map_err(|e| err(line, e.to_string()))?;
        let v = match rhs.trim() {
            "true" | "1" => PropAssign::True,
            "false" | "0" => PropAssign::False,
            "?" => PropAssign::NonDet,
            other => return Err(err(line, format!("bad assignment value `{other}`"))),
        };
        assigns.push((p, v));
    }
    FaultAction::new(name, guard, assigns).map_err(|e| err(line, e.to_string()))
}

/// Converts a propositional formula to a guard expression; `None` if it
/// contains temporal modalities.
fn formula_to_boolexpr(arena: &FormulaArena, f: FormulaId) -> Option<BoolExpr> {
    Some(match arena.get(f) {
        Formula::True => BoolExpr::Const(true),
        Formula::False => BoolExpr::Const(false),
        Formula::Prop(p) => BoolExpr::Prop(p),
        Formula::NegProp(p) => BoolExpr::not_prop(p),
        Formula::And(a, b) => BoolExpr::And(vec![
            formula_to_boolexpr(arena, a)?,
            formula_to_boolexpr(arena, b)?,
        ]),
        Formula::Or(a, b) => BoolExpr::Or(vec![
            formula_to_boolexpr(arena, a)?,
            formula_to_boolexpr(arena, b)?,
        ]),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsyn::synthesize;

    const MINI: &str = r#"
# a one-process toggler
processes 1
props P1: on off
init: off & ~on
global: (on <-> ~off) & (on -> AX1 off) & (off -> AX1 on) & AG EX true
tolerance masking
"#;

    #[test]
    fn minimal_file_parses_and_synthesizes() {
        let mut p = parse_problem(MINI).expect("parses");
        let s = synthesize(&mut p).unwrap_solved();
        assert!(s.verification.ok(), "{:?}", s.verification.failures);
        assert_eq!(s.program.processes.len(), 1);
    }

    #[test]
    fn faults_and_per_fault_tolerance_parse() {
        let src = r#"
processes 1
props P1: on off
aux P1: broken
init: off & ~on & ~broken
global: (on <-> ~off) & (on -> AX1 off) & (off -> AX1 on) & AG EX true
coupling: broken -> AX1 broken
fault break: ~broken & on -> broken := true
tolerance masking
tolerance break = nonmasking
"#;
        let p = parse_problem(src).expect("parses");
        assert_eq!(p.faults.len(), 1);
        assert_eq!(p.tolerance.of(0), Tolerance::Nonmasking);
    }

    #[test]
    fn nondet_assignment_parses() {
        let src = r#"
processes 1
props P1: x y
init: x & ~y
global: (x <-> ~y) & AG EX1 true & (x -> AX1 y) & (y -> AX1 x)
fault scramble: true -> x := ?, y := ?
tolerance nonmasking
"#;
        let p = parse_problem(src).expect("parses");
        assert_eq!(p.faults[0].assigns().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "processes 1\nprops P1: a\ninit: a\nglobal: a\nbogus directive\n";
        let e = parse_problem(bad).unwrap_err();
        assert_eq!(e.line, 5);

        let bad2 = "processes 1\nprops P1: a\ninit: a\nglobal: a\nfault f: AF a -> a := true\n";
        let e2 = parse_problem(bad2).unwrap_err();
        assert!(e2.message.contains("propositional"), "{e2}");
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse_problem("props P1: a\n")
            .unwrap_err()
            .message
            .contains("processes"));
        assert!(parse_problem("processes 1\nprops P1: a\nglobal: a\n")
            .unwrap_err()
            .message
            .contains("init"));
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn args_parse_the_documented_form() {
        let cmd = parse_args(&argv(&["p.ftsyn", "--dot", "out.dot", "--quiet"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::Run(Box::new(CliArgs {
                file: "p.ftsyn".into(),
                dot_out: Some("out.dot".into()),
                quiet: true,
                show_program: true,
                budget: Budget::default(),
                minimize_threads: None,
                checkpoint_out: None,
                resume: None,
                engine: Engine::Tableau,
            }))
        );
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), CliCommand::Help);
        assert_eq!(parse_args(&argv(&["-h"])).unwrap(), CliCommand::Help);
    }

    #[test]
    fn serve_subcommand_parses_and_rejects_arguments() {
        assert_eq!(
            parse_args(&argv(&["serve"])).unwrap(),
            CliCommand::Serve(Box::default())
        );
        let e = parse_args(&argv(&["serve", "--quiet"])).unwrap_err();
        assert!(e.contains("unknown serve argument"), "{e}");
        // A file literally named `serve` is unreachable positionally —
        // spell it with a path prefix like the --dot escape hatch.
        let cmd = parse_args(&argv(&["./serve"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.file, "./serve");
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let cmd = parse_args(&argv(&[
            "serve",
            "--checkpoint-dir",
            "/tmp/ckpts",
            "--slots",
            "2",
            "--queue",
            "4",
            "--cache-max-entries",
            "1000",
            "--cache-max-bytes",
            "1048576",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            CliCommand::Serve(Box::new(ServeArgs {
                checkpoint_dir: Some("/tmp/ckpts".into()),
                slots: Some(2),
                queue: 4,
                cache_max_entries: Some(1000),
                cache_max_bytes: Some(1048576),
            }))
        );
        for bad in [
            vec!["serve", "--checkpoint-dir"],
            vec!["serve", "--slots", "0"],
            vec!["serve", "--slots", "many"],
            vec!["serve", "--queue", "4"], // queue without slots
            vec!["serve", "--cache-max-entries", "--slots"],
            vec!["serve", "p.ftsyn"],
        ] {
            assert!(
                parse_args(&argv(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert_eq!(
            parse_args(&argv(&["serve", "--help"])).unwrap(),
            CliCommand::Help
        );
    }

    #[test]
    fn checkpoint_and_resume_flags_parse_and_validate() {
        let cmd = parse_args(&argv(&[
            "p.ftsyn",
            "--max-states",
            "100",
            "--checkpoint",
            "out.ckpt",
        ]))
        .unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.checkpoint_out.as_deref(), Some("out.ckpt"));
        assert_eq!(a.resume, None);

        let cmd = parse_args(&argv(&["p.ftsyn", "--resume", "in.ckpt"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.resume.as_deref(), Some("in.ckpt"));

        for bad in [
            vec!["p.ftsyn", "--checkpoint"],
            vec!["p.ftsyn", "--checkpoint", "--quiet"],
            vec!["p.ftsyn", "--resume"],
            vec!["p.ftsyn", "--resume", "--max-states"],
        ] {
            assert!(
                parse_args(&argv(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn budget_flags_parse() {
        let cmd = parse_args(&argv(&[
            "p.ftsyn",
            "--timeout",
            "2.5",
            "--max-states",
            "5000",
            "--max-minimize-attempts",
            "100",
        ]))
        .unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.budget.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(a.budget.max_states, Some(5000));
        assert_eq!(a.budget.max_minimize_attempts, Some(100));
        assert!(!a.budget.is_unlimited());
        // No budget flags → unlimited.
        let cmd = parse_args(&argv(&["p.ftsyn"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert!(a.budget.is_unlimited());
    }

    #[test]
    fn minimize_threads_flag_parses_and_validates() {
        let cmd = parse_args(&argv(&["p.ftsyn", "--minimize-threads", "8"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.minimize_threads, Some(8));
        // Absent → follow the build thread count.
        let cmd = parse_args(&argv(&["p.ftsyn"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.minimize_threads, None);
        // Zero threads cannot scan anything.
        let e = parse_args(&argv(&["p.ftsyn", "--minimize-threads", "0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        for bad in [
            vec!["p.ftsyn", "--minimize-threads"],
            vec!["p.ftsyn", "--minimize-threads", "some"],
            vec!["p.ftsyn", "--minimize-threads", "--quiet"],
            vec!["p.ftsyn", "--minimize-threads", "1.5"],
        ] {
            assert!(
                parse_args(&argv(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn budget_flags_reject_garbage() {
        for bad in [
            vec!["p.ftsyn", "--timeout", "soon"],
            vec!["p.ftsyn", "--timeout", "-1"],
            vec!["p.ftsyn", "--timeout"],
            vec!["p.ftsyn", "--max-states", "many"],
            vec!["p.ftsyn", "--max-states", "--quiet"],
            vec!["p.ftsyn", "--max-minimize-attempts", "1.5"],
        ] {
            assert!(
                parse_args(&argv(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn dot_rejects_a_following_flag() {
        // Regression: `--dot --quiet` used to write a file literally
        // named `--quiet` and drop the quiet flag.
        let e = parse_args(&argv(&["p.ftsyn", "--dot", "--quiet"])).unwrap_err();
        assert!(e.contains("--dot requires a path"), "{e}");
        assert!(e.contains("--quiet"), "{e}");
        let e2 = parse_args(&argv(&["p.ftsyn", "--dot"])).unwrap_err();
        assert!(e2.contains("requires a path"), "{e2}");
        // The documented escape hatch still reaches a dashed filename.
        let cmd = parse_args(&argv(&["p.ftsyn", "--dot", "./--quiet"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.dot_out.as_deref(), Some("./--quiet"));
        assert!(!a.quiet);
    }

    #[test]
    fn unknown_flags_and_extra_files_are_usage_errors() {
        assert!(parse_args(&argv(&["p.ftsyn", "--bogus"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_args(&argv(&["a.ftsyn", "b.ftsyn"]))
            .unwrap_err()
            .contains("unexpected argument"));
        assert_eq!(parse_args(&[]).unwrap_err(), USAGE);
    }

    #[test]
    fn engine_flag_parses_and_validates() {
        // Default is the tableau pipeline.
        let cmd = parse_args(&argv(&["p.ftsyn"])).unwrap();
        let CliCommand::Run(a) = cmd else { panic!() };
        assert_eq!(a.engine, Engine::Tableau);
        for (name, engine) in [("tableau", Engine::Tableau), ("cegis", Engine::Cegis)] {
            let cmd = parse_args(&argv(&["p.ftsyn", "--engine", name])).unwrap();
            let CliCommand::Run(a) = cmd else { panic!() };
            assert_eq!(a.engine, engine, "--engine {name}");
        }
        // Unknown engines are usage errors (exit 2), not fallbacks.
        let e = parse_args(&argv(&["p.ftsyn", "--engine", "magic"])).unwrap_err();
        assert!(e.contains("unknown engine `magic`"), "{e}");
        assert!(e.contains("tableau"), "{e}");
        for bad in [
            vec!["p.ftsyn", "--engine"],
            vec!["p.ftsyn", "--engine", "--quiet"],
        ] {
            assert!(
                parse_args(&argv(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn cegis_engine_rejects_checkpointing() {
        for bad in [
            vec!["p.ftsyn", "--engine", "cegis", "--resume", "in.ckpt"],
            vec!["p.ftsyn", "--engine", "cegis", "--checkpoint", "out.ckpt"],
        ] {
            let e = parse_args(&argv(&bad)).unwrap_err();
            assert!(e.contains("tableau-only"), "{bad:?}: {e}");
        }
        // Order independence: flag after the checkpoint option.
        let e = parse_args(&argv(&[
            "p.ftsyn", "--resume", "in.ckpt", "--engine", "cegis",
        ]))
        .unwrap_err();
        assert!(e.contains("tableau-only"), "{e}");
    }

    #[test]
    fn usage_documents_the_engine_flag() {
        assert!(USAGE.contains("--engine"), "USAGE must document --engine");
        assert!(USAGE.contains("cegis"), "USAGE must name the cegis engine");
    }

    #[test]
    fn usage_documents_every_exit_code() {
        for code in ["0 ", "1 ", "2 ", "3 ", "4 "] {
            assert!(
                USAGE.lines().any(|l| l.trim_start().starts_with(code)),
                "exit code {code} undocumented in USAGE"
            );
        }
    }

    #[test]
    fn mode_directive_switches_certificates() {
        let src = "processes 1\nprops P1: a\ninit: a\nglobal: AG EX1 true\nmode fault-prone\n";
        let p = parse_problem(src).expect("parses");
        assert_eq!(p.mode, ftsyn::CertMode::FaultProne);
    }
}
