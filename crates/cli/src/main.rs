//! `ftsyn` — synthesize a fault-tolerant concurrent program from a
//! problem-description file.
//!
//! ```text
//! USAGE: ftsyn <problem.ftsyn> [--engine tableau|cegis] [--dot <out.dot>]
//!              [--quiet] [--no-program]
//!              [--timeout <secs>] [--max-states <n>] [--max-minimize-attempts <n>]
//!              [--minimize-threads <n>] [--checkpoint <out.ckpt>] [--resume <in.ckpt>]
//!        ftsyn serve [--checkpoint-dir <dir>] [--slots <n>] [--queue <n>]
//!              [--cache-max-entries <n>] [--cache-max-bytes <n>]
//! ```

use ftsyn::kripke::StateRole;
use ftsyn::{CacheLimits, Checkpoint, Engine, Governor, SynthesisOutcome, ThreadPlan};
use ftsyn_cli::{parse_args, CliArgs, CliCommand, ServeArgs, USAGE};
use ftsyn_service::admission::AdmissionConfig;
use std::process::ExitCode;

/// Runs the stdin/stdout JSON daemon, with the CLI's problem-file
/// parser injected for inline `"spec"` requests.
fn run_serve(args: ServeArgs) -> ExitCode {
    let mut service = ftsyn_service::Service::new().with_spec_parser(Box::new(|text: &str| {
        ftsyn_cli::parse_problem(text).map_err(|e| e.to_string())
    }));
    if let Some(slots) = args.slots {
        service = service.with_admission(AdmissionConfig::bounded(slots, args.queue));
    }
    if args.cache_max_entries.is_some() || args.cache_max_bytes.is_some() {
        service = service.with_cache_limits(CacheLimits {
            max_entries: args.cache_max_entries,
            max_bytes: args.cache_max_bytes,
        });
    }
    if let Some(dir) = &args.checkpoint_dir {
        service = match service.with_checkpoint_dir(std::path::Path::new(dir)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: {e}");
                return ExitCode::from(2);
            }
        };
        // The recovery report goes to stderr: stdout carries only
        // protocol lines.
        if let Some(recovery) = service.recovery() {
            for rec in &recovery.recovered {
                eprintln!(
                    "recovered checkpoint \"{}\" ({} nodes); resume with \
                     {{\"op\":\"resume\",\"from\":\"{}\"}}",
                    rec.id,
                    rec.nodes,
                    rec.id
                );
            }
            for (name, reason) in &recovery.quarantined {
                eprintln!("quarantined {name}: {reason}");
            }
            for note in &recovery.notes {
                eprintln!("recovery: {note}");
            }
        }
    }
    let stdin = std::io::stdin();
    match ftsyn_service::serve(&service, stdin.lock(), std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let CliArgs {
        file,
        dot_out,
        quiet,
        show_program,
        budget,
        minimize_threads,
        checkpoint_out,
        resume,
        engine,
    } = match parse_args(&args) {
        Ok(CliCommand::Run(a)) => *a,
        Ok(CliCommand::Serve(a)) => return run_serve(*a),
        Ok(CliCommand::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut problem = match ftsyn_cli::parse_problem(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::from(2);
        }
    };

    // An unlimited budget takes the ungoverned (byte-identical) path;
    // any budget flag switches to the governed pipeline. Either way the
    // minimization scan gets its own thread budget when asked for one.
    let build_threads = ftsyn::default_threads();
    let plan = ThreadPlan {
        build: build_threads,
        minimize: minimize_threads.unwrap_or(build_threads),
    };
    let gov = (!budget.is_unlimited()).then(|| Governor::with_budget(budget));
    let outcome = match resume {
        None => ftsyn::synthesize_with_engine(&mut problem, engine, plan, gov.as_ref()),
        Some(ck_path) => {
            let blob = match std::fs::read(&ck_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read checkpoint {ck_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let ck = match Checkpoint::decode(&blob) {
                Ok(ck) => ck,
                Err(e) => {
                    eprintln!("cannot resume from {ck_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match ftsyn::synthesize_resume(&mut problem, plan, gov.as_ref(), ck) {
                Ok(outcome) => outcome,
                // The blob pins a spec fingerprint; a mismatch means
                // this is not the problem that produced it.
                Err(e) => {
                    eprintln!("cannot resume from {ck_path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match outcome {
        SynthesisOutcome::Solved(s) => {
            if !quiet {
                let roles = s.model.classify();
                let count = |r: StateRole| roles.iter().filter(|x| **x == r).count();
                println!(
                    "solved: {} states (normal {}, perturbed {}, recovery {}), \
                     {} program + {} fault transitions, {:.1?}",
                    s.stats.model_states,
                    count(StateRole::Normal),
                    count(StateRole::Perturbed),
                    count(StateRole::Recovery),
                    s.stats.program_transitions,
                    s.stats.fault_transitions,
                    s.stats.elapsed
                );
                let st = &s.stats;
                if engine == Engine::Cegis {
                    let p = &st.cegis_profile;
                    println!(
                        "cegis: solved at queue bound {} of {} tried, \
                         {} candidates ({} oracle-rejected), \
                         universe {} valuations ({} banned by the fault cascade), \
                         peak base graph {} states, \
                         extract {:.1?}, verify {:.1?}",
                        p.solved_at_bound.unwrap_or(0),
                        p.max_bound_tried + 1,
                        p.candidates,
                        p.oracle_rejections,
                        p.universe,
                        p.banned,
                        p.peak_base_states,
                        st.extract_time,
                        st.verify_time
                    );
                } else {
                    let idle_total: std::time::Duration = st.build_profile.worker_idle.iter().sum();
                    println!(
                        "phases: build {:.1?} ({} levels, peak frontier {}, {} threads, \
                     {} batches, {} steals, idle {:.1?}, \
                     {} intern probes in {:.1?}, cache {}/{} hits), \
                     delete {:.1?} ({} rounds, {} worklist pops, {} certs built, {} reused), \
                     unravel {:.1?}, minimize {:.1?} ({} merges of {} tried, \
                     {} pruned, {} incremental / {} full checks, \
                     {} base labelings, {} threads), \
                     extract {:.1?} ({} shared vars, {} explored vs {} model states, \
                     {} off-model, {} arcs refined in {} rounds, extraction {}), \
                     verify {:.1?}, other {:.1?}",
                        st.build_time,
                        st.build_profile.levels,
                        st.build_profile.max_frontier,
                        st.build_profile.threads,
                        st.build_profile.batches,
                        st.build_profile.steals,
                        idle_total,
                        st.build_profile.intern_probes,
                        st.build_profile.intern_time,
                        st.build_profile.cache_hits,
                        st.build_profile.cache_hits + st.build_profile.cache_misses,
                        st.deletion_time,
                        st.deletion_profile.rounds,
                        st.deletion_profile.worklist_pops,
                        st.deletion_profile.cert_builds,
                        st.deletion_profile.cert_reuses,
                        st.unravel_time,
                        st.minimize_time,
                        st.minimize_profile.merges,
                        st.minimize_profile.attempts,
                        st.minimize_profile.pruned_candidates,
                        st.minimize_profile.incremental_relabels,
                        st.minimize_profile.full_checks,
                        st.minimize_profile.base_labelings,
                        st.minimize_profile.threads,
                        st.extract_time,
                        st.extract_profile.shared_vars,
                        st.extract_profile.explored_states,
                        st.extract_profile.model_states,
                        st.extract_profile.off_model_states,
                        st.extract_profile.refined_arcs,
                        st.extract_profile.refinement_rounds,
                        if st.extract_profile.verified {
                            "VERIFIED"
                        } else {
                            "REJECTED"
                        },
                        st.verify_time,
                        st.residual_time
                    );
                }
                println!(
                    "verification: {}",
                    if s.verification.ok() {
                        "PASS".to_owned()
                    } else {
                        format!(
                            "FAIL — {}",
                            s.verification
                                .failures
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join("; ")
                        )
                    }
                );
            }
            if show_program {
                println!("{}", s.program.display(&problem.props));
            }
            if let Some(path) = dot_out {
                if let Err(e) = std::fs::write(&path, s.model.to_dot(&problem.props)) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                if !quiet {
                    println!("model written to {path}");
                }
            }
            if s.verification.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(3)
            }
        }
        SynthesisOutcome::Impossible(imp) => {
            println!(
                "impossible: no program satisfies the specification with the \
                 required tolerance (tableau {} nodes, {} deleted, {:.1?})",
                imp.stats.tableau_nodes,
                imp.stats.deletion.total(),
                imp.stats.elapsed
            );
            println!(
                "phases: build {:.1?}, delete {:.1?} ({} rounds, {} worklist pops)",
                imp.stats.build_time,
                imp.stats.deletion_time,
                imp.stats.deletion_profile.rounds,
                imp.stats.deletion_profile.worklist_pops
            );
            ExitCode::from(1)
        }
        SynthesisOutcome::Aborted(a) => {
            println!("aborted in {} phase: {}", a.phase, a.reason);
            println!(
                "partial stats: tableau {} nodes, build {:.1?}, delete {:.1?} \
                 ({} worklist pops, {} certs built), unravel {:.1?}, \
                 minimize {:.1?} ({} merges of {} tried), elapsed {:.1?}",
                a.stats.tableau_nodes,
                a.stats.build_time,
                a.stats.deletion_time,
                a.stats.deletion_profile.worklist_pops,
                a.stats.deletion_profile.cert_builds,
                a.stats.unravel_time,
                a.stats.minimize_time,
                a.stats.minimize_profile.merges,
                a.stats.minimize_profile.attempts,
                a.stats.elapsed
            );
            for f in &a.failures {
                println!("failure: {f}");
            }
            if let Some(path) = checkpoint_out {
                match &a.checkpoint {
                    Some(ck) => {
                        if let Err(e) = std::fs::write(&path, ck.encode()) {
                            eprintln!("cannot write checkpoint {path}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("checkpoint written to {path} (resume with --resume {path})");
                    }
                    None => {
                        eprintln!(
                            "no checkpoint captured: the abort happened in the {} phase, \
                             and only the tableau build is checkpointable",
                            a.phase
                        );
                    }
                }
            }
            ExitCode::from(4)
        }
    }
}
