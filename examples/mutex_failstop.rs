//! Reproduction of Section 6.1 (Figures 3–9): two-process mutual
//! exclusion subject to fail-stop failures with masking tolerance.
//!
//! Synthesizes the fault-tolerant program, prints the model summary and
//! the synchronization skeletons, then exercises the program under
//! randomized fail-stop injection and reports the observed behavior.
//!
//! Run with `cargo run --release --example mutex_failstop`.

use ftsyn::guarded::sim::{simulate, SimConfig, SimStep};
use ftsyn::kripke::StateRole;
use ftsyn::{problems::mutex, synthesize, Tolerance};

fn main() {
    println!("== fault specification (Section 6.1) ==");
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    for f in &problem.faults {
        println!("  {}", f.display(&problem.props));
    }

    let solved = synthesize(&mut problem).unwrap_solved();
    let roles = solved.model.classify();
    let count = |r: StateRole| roles.iter().filter(|x| **x == r).count();
    println!("\n== synthesized model (Figure 8) ==");
    println!(
        "states: {} (normal {}, perturbed {}, recovery {})",
        solved.model.len(),
        count(StateRole::Normal),
        count(StateRole::Perturbed),
        count(StateRole::Recovery),
    );
    println!(
        "transitions: {} program + {} fault",
        solved.stats.program_transitions, solved.stats.fault_transitions
    );
    println!(
        "tableau: {} nodes built, {} deleted, synthesis took {:?}",
        solved.stats.tableau_nodes,
        solved.stats.deletion.total(),
        solved.stats.elapsed
    );
    println!(
        "mechanical verification (soundness + masking + fault closure): {}",
        if solved.verification.ok() { "PASS" } else { "FAIL" }
    );

    println!("\n== extracted fault-tolerant program (Figure 9) ==");
    println!("{}", solved.program.display(&problem.props));

    println!("== fault-injection run ==");
    let cfg = SimConfig {
        steps: 60,
        fault_prob: 0.15,
        max_faults: 3,
        seed: 2024,
    };
    let trace = simulate(&solved.program, &problem.faults, &problem.props, &cfg);
    let c1 = problem.props.id("C1").unwrap();
    let c2 = problem.props.id("C2").unwrap();
    for (i, step) in trace.steps.iter().enumerate() {
        let what = match step {
            SimStep::Proc { index } => format!("P{}", index + 1),
            SimStep::Fault { index } => {
                format!("FAULT {}", problem.faults[*index].name())
            }
            SimStep::Deadlock => "deadlock".into(),
        };
        let v = &trace.valuations[i + 1];
        let names: Vec<&str> = v.iter().map(|p| problem.props.name(p)).collect();
        println!("  step {i:>2}: {what:<22} -> [{}]", names.join(" "));
    }
    println!(
        "\nmutual exclusion held throughout: {}",
        trace.always(|v| !(v.contains(c1) && v.contains(c2)))
    );
    println!("faults injected: {}", trace.fault_count());
}
