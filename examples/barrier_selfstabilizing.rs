//! Reproduction of Section 6.2 (Figures 10–11): barrier synchronization
//! subject to general state failures with nonmasking (self-stabilizing)
//! tolerance.
//!
//! Run with `cargo run --release --example barrier_selfstabilizing`.

use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{PropSet, StateRole};
use ftsyn::{problems::barrier, synthesize};

fn main() {
    let mut problem = barrier::with_general_state_faults(2);
    println!("== fault specification: general state failures ==");
    for f in problem.faults.iter().take(4) {
        println!("  {}", f.display(&problem.props));
    }
    println!("  … and {} more", problem.faults.len() - 4);

    let solved = synthesize(&mut problem).unwrap_solved();
    let roles = solved.model.classify();
    let count = |r: StateRole| roles.iter().filter(|x| **x == r).count();
    println!("\n== synthesized model (Figure 10) ==");
    println!(
        "states: {} (normal {}, perturbed {}, recovery {}), verification {}",
        solved.model.len(),
        count(StateRole::Normal),
        count(StateRole::Perturbed),
        count(StateRole::Recovery),
        if solved.verification.ok() { "PASS" } else { "FAIL" }
    );

    // The paper's observation: in the fault-intolerant program a process
    // may move when the other is at the same state or one ahead; the
    // fault-tolerant program also moves when the other is *two* ahead.
    println!("\n== extracted self-stabilizing program (Figure 11) ==");
    println!("{}", solved.program.display(&problem.props));

    println!("== random corruption run ==");
    let phase = |v: &PropSet, i: usize| -> &'static str {
        for name in ["SA", "EA", "SB", "EB"] {
            let p = problem.props.id(&format!("{name}{}", i + 1)).unwrap();
            if v.contains(p) {
                return name;
            }
        }
        "??"
    };
    let cfg = SimConfig {
        steps: 40,
        fault_prob: 0.2,
        max_faults: 2,
        seed: 99,
    };
    let trace = simulate(&solved.program, &problem.faults, &problem.props, &cfg);
    for (i, v) in trace.valuations.iter().enumerate() {
        let marker = if i > 0
            && matches!(
                trace.steps[i - 1],
                ftsyn::guarded::sim::SimStep::Fault { .. }
            ) {
            "  <- CORRUPTION"
        } else {
            ""
        };
        println!("  t={i:>2}  P1:{}  P2:{}{marker}", phase(v, 0), phase(v, 1));
    }
    let sync_ok = |v: &PropSet| {
        let pos = |i: usize| {
            ["SA", "EA", "SB", "EB"]
                .iter()
                .position(|n| {
                    v.contains(problem.props.id(&format!("{n}{}", i + 1)).unwrap())
                })
                .unwrap_or(9)
        };
        let (a, b) = (pos(0), pos(1));
        a < 9 && b < 9 && (4 + a as i32 - b as i32) % 4 != 2
    };
    match trace.eventually_always_after_faults(8, sync_ok) {
        Some(true) => println!("\nself-stabilized after the last corruption: yes"),
        Some(false) => println!("\nself-stabilized after the last corruption: NO (bug!)"),
        None => println!("\n(trace too short to judge convergence)"),
    }
}
