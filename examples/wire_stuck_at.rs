//! Reproduction of the wire example of Section 2.3: the running example
//! the paper uses to introduce its fault model. A wire copies `in` to
//! `out`; the stuck-at-low-voltage fault breaks it (permanently, or
//! intermittently with repair, or a bounded number of times).
//!
//! Run with `cargo run --release --example wire_stuck_at`.

use ftsyn::guarded::sim::{simulate, SimConfig, SimStep};
use ftsyn::problems::wire;

fn main() {
    println!("== the wire and its faults (Section 2.3) ==");
    let w = wire::build(None);
    println!("{}", w.program.display(&w.props));
    for f in &w.faults {
        println!("fault: {}", f.display(&w.props));
    }

    println!("\n== intermittent stuck-at run (fault + repair) ==");
    let cfg = SimConfig {
        steps: 24,
        fault_prob: 0.3,
        max_faults: 4,
        seed: 42,
    };
    let trace = simulate(&w.program, &w.faults, &w.props, &cfg);
    for (i, v) in trace.valuations.iter().enumerate() {
        let out = if v.contains(w.wire_props.output) { 1 } else { 0 };
        let broken = v.contains(w.wire_props.broken);
        let step = if i == 0 {
            "init".to_owned()
        } else {
            match &trace.steps[i - 1] {
                SimStep::Proc { .. } => "wire".to_owned(),
                SimStep::Fault { index } => format!("FAULT {}", w.faults[*index].name()),
                SimStep::Deadlock => "deadlock".to_owned(),
            }
        };
        println!("  t={i:>2}  out={out}  broken={broken:<5}  ({step})");
    }

    println!("\n== bounded variant: at most k=2 stuck-at occurrences ==");
    let wb = wire::build(Some(2));
    for f in &wb.faults {
        println!("fault: {}", f.display(&wb.props));
    }
    let cfg = SimConfig {
        steps: 200,
        fault_prob: 0.5,
        max_faults: 100,
        seed: 7,
    };
    // Only the stuck-at actions; the unary counter enforces the bound.
    let trace = simulate(&wb.program, &wb.faults[..2], &wb.props, &cfg);
    println!(
        "stuck-at occurrences over {} steps: {} (bounded by 2)",
        trace.steps.len(),
        trace.fault_count()
    );
}
