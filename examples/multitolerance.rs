//! Reproduction of Section 8.2: multitolerance. Different fault classes
//! are tolerated in different ways within one synthesis — fail-stop
//! failures are *masked*, while an undetectable corruption that drops P1
//! into its critical region is tolerated *nonmasking* (ridden out).
//!
//! Run with `cargo run --release --example multitolerance`.

use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::kripke::{StateRole, TransKind};
use ftsyn::{problems::mutex, synthesize, SynthesisOutcome, Tolerance, ToleranceAssignment};

fn problem_with_corruption() -> (ftsyn::SynthesisProblem, usize) {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let n1 = problem.props.id("N1").unwrap();
    let t1 = problem.props.id("T1").unwrap();
    let c1 = problem.props.id("C1").unwrap();
    let d1 = problem.props.id("D1").unwrap();
    problem.faults.push(
        FaultAction::new(
            "corrupt-P1-to-C",
            BoolExpr::tru(),
            vec![
                (c1, PropAssign::True),
                (n1, PropAssign::False),
                (t1, PropAssign::False),
                (d1, PropAssign::False),
            ],
        )
        .expect("valid action"),
    );
    let idx = problem.faults.len() - 1;
    (problem, idx)
}

fn main() {
    println!("Fault classes:");
    println!("  1. fail-stop + repair (detectable)      -> require MASKING");
    println!("  2. corrupt P1 into C1 (undetectable)    -> require NONMASKING\n");

    // Uniform masking over both classes: impossible (the corruption can
    // create [C1 C2], contradicting AG ~(C1 & C2) outright).
    let (mut uniform, _) = problem_with_corruption();
    print!("uniform masking over both classes: ");
    match synthesize(&mut uniform) {
        SynthesisOutcome::Impossible(_) => println!("impossible (as expected)"),
        SynthesisOutcome::Solved(_) => println!("solved?! (bug)"),
        SynthesisOutcome::Aborted(_) => unreachable!("ungoverned synthesis cannot abort"),
    }

    // Multitolerance: per-fault-action tolerance assignment.
    let (mut mixed, corrupt_idx) = problem_with_corruption();
    let tols: Vec<Tolerance> = (0..mixed.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    mixed.tolerance = ToleranceAssignment::PerFault(tols);
    print!("multitolerant assignment:          ");
    match synthesize(&mut mixed) {
        SynthesisOutcome::Solved(s) => {
            println!(
                "SOLVED — {} states, verification {}",
                s.stats.model_states,
                if s.verification.ok() { "PASS" } else { "FAIL" }
            );
            let roles = s.model.classify();
            let mut masked = 0;
            let mut ridden = 0;
            for st in s.model.state_ids() {
                if roles[st.index()] != StateRole::Perturbed {
                    continue;
                }
                let via_corrupt = s
                    .model
                    .pred(st)
                    .iter()
                    .any(|e| e.kind == TransKind::Fault(corrupt_idx));
                if via_corrupt {
                    ridden += 1;
                } else {
                    masked += 1;
                }
            }
            println!(
                "perturbed states: {masked} reached by masked faults, {ridden} by the corruption"
            );
        }
        SynthesisOutcome::Impossible(_) => println!("impossible?! (bug)"),
        SynthesisOutcome::Aborted(_) => unreachable!("ungoverned synthesis cannot abort"),
    }
}
