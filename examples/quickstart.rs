//! Quickstart: synthesize the classic two-process mutual exclusion
//! program (no faults — the Emerson–Clarke 1982 setting the paper
//! extends), print the synthesized synchronization skeletons, and
//! model-check the result.
//!
//! Run with `cargo run --release --example quickstart`.

use ftsyn::kripke::{Checker, Semantics};
use ftsyn::{problems::mutex, synthesize};

fn main() {
    // 1. Pose the problem: the CTL specification of Section 2.2.
    let mut problem = mutex::fault_free(2);

    // 2. Synthesize.
    let solved = synthesize(&mut problem).unwrap_solved();
    println!("== synthesis statistics ==");
    println!(
        "spec length |spec| = {}, closure = {}, tableau nodes = {}, model states = {}",
        solved.stats.spec_length,
        solved.stats.closure_size,
        solved.stats.tableau_nodes,
        solved.stats.model_states
    );

    // 3. The extracted concurrent program P1 ‖ P2 (Figure 9's upper,
    // fault-free portion): guarded-command synchronization skeletons.
    println!("\n== extracted program ==");
    println!("{}", solved.program.display(&problem.props));

    // 4. Every synthesis is verified mechanically; re-check one property
    // by hand: mutual exclusion AG ¬(C1 ∧ C2).
    let c1 = problem.arena.prop(problem.props.id("C1").unwrap());
    let c2 = problem.arena.prop(problem.props.id("C2").unwrap());
    let both = problem.arena.and(c1, c2);
    let nboth = problem.arena.not(both);
    let ag = problem.arena.ag(nboth);
    let mut ck = Checker::new(&solved.model, Semantics::FaultFree);
    let init = solved.model.init_states()[0];
    println!("== model checking ==");
    println!(
        "AG ~(C1 & C2) at the initial state: {}",
        ck.holds(&problem.arena, ag, init)
    );
    println!(
        "built-in verification: {}",
        if solved.verification.ok() { "PASS" } else { "FAIL" }
    );
}
