//! Authoring your own synthesis problem from textual CTL.
//!
//! This walkthrough builds a problem that appears nowhere in the paper:
//! a traffic-light pair (north-south and east-west) that must never show
//! green together, always eventually serve each direction, and tolerate
//! a *controller glitch* that spontaneously flips the east-west light to
//! red — masked, because the glitch only ever makes the system safer.
//!
//! Run with `cargo run --release --example custom_problem`.

use ftsyn::ctl::{parse::parse, FormulaArena, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{synthesize, SynthesisProblem, Tolerance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the propositions and their owning processes.
    let mut props = PropTable::new();
    for name in ["R1", "G1"] {
        props.add(name, Owner::Process(0))?;
    }
    for name in ["R2", "G2"] {
        props.add(name, Owner::Process(1))?;
    }
    let mut arena = FormulaArena::new(2);

    // 2. Write the specification in the paper's surface syntax.
    let init = parse(&mut arena, &mut props, "R1 & R2", false)?;
    let global = parse(
        &mut arena,
        &mut props,
        "(R1 <-> ~G1) & (R2 <-> ~G2) \
         & ~(G1 & G2) \
         & (R1 -> AX2 R1) & (G1 -> AX2 G1) \
         & (R2 -> AX1 R2) & (G2 -> AX1 G2) \
         & (R1 -> AF G1) & (R2 -> AF G2) \
         & (G1 -> AF R1) & (G2 -> AF R2) \
         & AG EX true",
        false,
    )?;
    let spec = Spec::new(&mut arena, init, global);

    // 3. Describe the fault: a glitch that slams the east-west light to
    // red whenever it is green.
    let g2 = props.id("G2")?;
    let r2 = props.id("R2")?;
    let glitch = FaultAction::new(
        "glitch-EW-to-red",
        BoolExpr::Prop(g2),
        vec![(g2, PropAssign::False), (r2, PropAssign::True)],
    )?;

    // 4. Synthesize with masking tolerance.
    let mut problem = SynthesisProblem::new(arena, props, spec, vec![glitch], Tolerance::Masking);
    let solved = synthesize(&mut problem).unwrap_solved();

    println!("== outcome ==");
    println!(
        "model: {} states, verification {}",
        solved.stats.model_states,
        if solved.verification.ok() { "PASS" } else { "FAIL" }
    );
    println!("\n== synthesized controller ==");
    println!("{}", solved.program.display(&problem.props));

    // 5. Export the model for inspection (Graphviz).
    println!("== graphviz (pipe into `dot -Tsvg` to render) ==");
    println!("{}", solved.model.to_dot(&problem.props));
    Ok(())
}
