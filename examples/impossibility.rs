//! Reproduction of Section 6.3: a mechanically generated impossibility
//! result. Barrier synchronization subject to fail-stop failures, where
//! a process may stay down forever, has *no* nonmasking-tolerant
//! solution — the progress of each process requires the concomitant
//! progress of the other.
//!
//! Run with `cargo run --release --example impossibility`.

use ftsyn::{problems::barrier, synthesize, SynthesisOutcome};

fn main() {
    println!("Barrier synchronization + fail-stop faults + nonmasking tolerance");
    println!("(a failed process may stay down forever: AG(Di -> EG Di))\n");

    let mut problem = barrier::with_fail_stop_impossible(2);
    match synthesize(&mut problem) {
        SynthesisOutcome::Impossible(imp) => {
            println!("RESULT: impossible — no such program exists (Corollary 7.2).");
            println!();
            println!("tableau nodes built:   {}", imp.stats.tableau_nodes);
            println!("deleted by DeleteP:    {}", imp.stats.deletion.prop_inconsistent);
            println!("deleted by DeleteOR:   {}", imp.stats.deletion.or_without_children);
            println!("deleted by DeleteAND:  {}", imp.stats.deletion.and_missing_successor);
            println!("deleted by DeleteAU:   {}", imp.stats.deletion.au_unfulfilled);
            println!("deleted by DeleteEU:   {}", imp.stats.deletion.eu_unfulfilled);
            println!("decided in:            {:?}", imp.stats.elapsed);
            println!();
            println!("Why: after P1 fail-stops, the coupling admits a fault-free");
            println!("fullpath on which D1 holds forever (EG D1). Along it, P1 is");
            println!("never in exactly one phase, so AG(global-spec) never holds,");
            println!("and the nonmasking obligation AF AG(global-spec) cannot be");
            println!("fulfilled — DeleteAU removes the perturbed states, DeleteAND");
            println!("cascades through the fault edges, and the root is deleted.");
        }
        SynthesisOutcome::Solved(_) => {
            println!("RESULT: solved?! (this contradicts Section 6.3 — a bug)");
        }
        SynthesisOutcome::Aborted(_) => unreachable!("ungoverned synthesis cannot abort"),
    }

    // Contrast: the same problem under general state faults is solvable.
    println!("\n--- contrast: general state faults instead of fail-stop ---");
    let mut solvable = barrier::with_general_state_faults(2);
    match synthesize(&mut solvable) {
        SynthesisOutcome::Solved(s) => println!(
            "solved: {} states, verification {}",
            s.stats.model_states,
            if s.verification.ok() { "PASS" } else { "FAIL" }
        ),
        SynthesisOutcome::Impossible(_) => println!("impossible?! (bug)"),
        SynthesisOutcome::Aborted(_) => unreachable!("ungoverned synthesis cannot abort"),
    }
}
