//! Integration tests for conflict-graph mutual exclusion and dining
//! philosophers (generalizations of the paper's Section 2.2 problem).

use ftsyn::kripke::{Checker, Semantics};
use ftsyn::{problems::mutex, synthesize};

#[test]
fn four_philosophers_synthesize_and_opposite_neighbors_can_eat_together() {
    let mut problem = mutex::dining_philosophers(4);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);

    let c = |i: usize| problem.props.id(&format!("C{i}")).unwrap();
    // Adjacent philosophers never eat together…
    for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1)] {
        assert!(
            s.model.state_ids().all(|st| {
                let v = &s.model.state(st).props;
                !(v.contains(c(a)) && v.contains(c(b)))
            }),
            "adjacent {a}/{b} eat together"
        );
    }
    // …and some reachable state has opposite philosophers eating at once
    // (EF(C1 ∧ C3) under ⊨ₙ): the conflict graph is a cycle, not a
    // clique, so the synthesized solution may exploit the parallelism.
    let c1 = problem.arena.prop(c(1));
    let c3 = problem.arena.prop(c(3));
    let both = problem.arena.and(c1, c3);
    let ef = problem.arena.ef(both);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    assert!(
        ck.holds(&problem.arena, ef, s.model.init_states()[0]),
        "opposite philosophers should be able to eat concurrently"
    );
}

#[test]
fn nobody_starves_at_the_table() {
    let mut problem = mutex::dining_philosophers(3);
    let s = synthesize(&mut problem).unwrap_solved();
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    for i in 1..=3 {
        let t = problem.arena.prop(problem.props.id(&format!("T{i}")).unwrap());
        let c = problem.arena.prop(problem.props.id(&format!("C{i}")).unwrap());
        let af = problem.arena.af(c);
        let imp = problem.arena.implies(t, af);
        let ag = problem.arena.ag(imp);
        assert!(
            ck.holds(&problem.arena, ag, s.model.init_states()[0]),
            "philosopher {i} starves"
        );
    }
}

#[test]
fn empty_conflict_graph_gives_independent_cyclers() {
    // With no conflicts, every pair may be critical simultaneously.
    let mut problem = mutex::conflict_fault_free(2, &[]);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok());
    let c1 = problem.arena.prop(problem.props.id("C1").unwrap());
    let c2 = problem.arena.prop(problem.props.id("C2").unwrap());
    let both = problem.arena.and(c1, c2);
    let ef = problem.arena.ef(both);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    assert!(ck.holds(&problem.arena, ef, s.model.init_states()[0]));
}

#[test]
fn complete_graph_reduces_to_the_paper_mutex() {
    let mut a = mutex::conflict_fault_free(2, &[(0, 1)]);
    let mut b = mutex::fault_free(2);
    let sa = synthesize(&mut a).unwrap_solved();
    let sb = synthesize(&mut b).unwrap_solved();
    assert_eq!(sa.stats.model_states, sb.stats.model_states);
    assert_eq!(sa.stats.tableau_nodes, sb.stats.tableau_nodes);
}
