//! Integration test for the readers–writers problem: a specification
//! beyond the paper's worked examples, with an asymmetric exclusion
//! relation (the writer excludes everyone; readers share).

use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{Checker, Semantics, StateRole};
use ftsyn::{problems::readers_writers, synthesize, Tolerance};

#[test]
fn fault_free_readers_share_but_writer_excludes() {
    let mut problem = readers_writers::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);

    let cw = problem.props.id("Cw").unwrap();
    let cr1 = problem.props.id("Cr1").unwrap();
    let cr2 = problem.props.id("Cr2").unwrap();
    let mut both_readers = false;
    for st in s.model.state_ids() {
        let v = &s.model.state(st).props;
        assert!(!(v.contains(cw) && v.contains(cr1)));
        assert!(!(v.contains(cw) && v.contains(cr2)));
        if v.contains(cr1) && v.contains(cr2) {
            both_readers = true;
        }
    }
    assert!(
        both_readers,
        "readers must be able to read concurrently — otherwise this is just mutex"
    );
}

#[test]
fn writer_fail_stop_is_masked() {
    let mut problem = readers_writers::with_writer_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert!(s.verification.perturbed_count > 0);

    // Readers never starve, even while the writer is down: check
    // AG(Tr1 ⇒ AF Cr1) at every perturbed state under ⊨ₙ.
    let tr1 = problem.arena.prop(problem.props.id("Tr1").unwrap());
    let cr1 = problem.arena.prop(problem.props.id("Cr1").unwrap());
    let af = problem.arena.af(cr1);
    let imp = problem.arena.implies(tr1, af);
    let ag = problem.arena.ag(imp);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    let roles = s.model.classify();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Perturbed {
            assert!(
                ck.holds(&problem.arena, ag, st),
                "reader 1 starves at {}",
                s.model.state(st).display(&problem.props)
            );
        }
    }
}

#[test]
fn simulation_respects_the_asymmetric_exclusion() {
    let mut problem = readers_writers::with_writer_fail_stop(1, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    let cw = problem.props.id("Cw").unwrap();
    let cr1 = problem.props.id("Cr1").unwrap();
    for seed in 0..10 {
        let cfg = SimConfig {
            steps: 300,
            fault_prob: 0.15,
            max_faults: 4,
            seed,
        };
        let trace = simulate(&s.program, &problem.faults, &problem.props, &cfg);
        assert!(
            trace.always(|v| !(v.contains(cw) && v.contains(cr1))),
            "seed {seed}: writer/reader exclusion violated"
        );
    }
}

#[test]
fn repair_into_cw_is_guarded_on_readers() {
    // Unguarding the repair-into-Cw action makes masking impossible —
    // the same footnote-11 phenomenon as in the mutex example.
    let mut problem = readers_writers::with_writer_fail_stop(1, Tolerance::Masking);
    let mut faults = problem.faults.clone();
    for f in &mut faults {
        if f.name().ends_with("to-C") {
            let assigns = f.assigns().to_vec();
            let d_guard = match f.guard() {
                ftsyn::guarded::BoolExpr::And(parts) => parts[0].clone(),
                g => g.clone(),
            };
            *f = ftsyn::guarded::FaultAction::new(f.name().to_owned(), d_guard, assigns)
                .expect("valid");
        }
    }
    problem.faults = faults;
    assert!(!synthesize(&mut problem).is_solved());
}
