//! Integration test: extracted programs regenerate their models.
//!
//! The argument behind Corollary 7.1 — "execution of the extracted
//! program P does indeed generate M_F" — checked mechanically in two
//! parts:
//!
//! 1. **Fault-free exactness.** The interpreter run *without* faults
//!    regenerates the normal (fault-free reachable) portion of the
//!    synthesized model state-for-state and edge-for-edge.
//! 2. **Faulty-semantics preservation.** With faults injected, the
//!    regenerated structure may differ from `M_F` in *which member* of a
//!    shared-variable group a fault lands on (faults do not read shared
//!    variables — Section 5.3 shows the difference is harmless), so the
//!    comparison is semantic: the regenerated structure satisfies the
//!    temporal specification at its initial state under `⊨ₙ` and the
//!    tolerance labels at its perturbed states, and is fault-closed.

use ftsyn::kripke::{Checker, FtKripke, Semantics, StateRole, TransKind};
use ftsyn::guarded::interp::explore;
use ftsyn::{problems::barrier, problems::mutex, synthesize, Tolerance};
use std::collections::BTreeSet;

type StateKey = (Vec<u32>, Vec<u32>); // (valuation, shared values)

fn state_key(m: &FtKripke, s: ftsyn::kripke::StateId) -> StateKey {
    (
        m.state(s).props.iter().map(|p| p.0).collect(),
        m.state(s).shared.clone(),
    )
}

/// The fault-free reachable restriction of a structure as comparable
/// sets of states and labeled program edges.
fn fault_free_restriction(m: &FtKripke) -> (BTreeSet<StateKey>, BTreeSet<(StateKey, usize, StateKey)>) {
    let roles = m.classify();
    let mut states = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for s in m.state_ids() {
        if roles[s.index()] != StateRole::Normal {
            continue;
        }
        states.insert(state_key(m, s));
        for e in m.succ(s) {
            if let TransKind::Proc(i) = e.kind {
                if roles[e.to.index()] == StateRole::Normal {
                    edges.insert((state_key(m, s), i, state_key(m, e.to)));
                }
            }
        }
    }
    (states, edges)
}

fn check_fault_free_exact(model: &FtKripke, program: &ftsyn::guarded::Program, props: &ftsyn::ctl::PropTable) {
    let regen = explore(program, &[], props).expect("fault-free exploration");
    let (ms, me) = fault_free_restriction(model);
    let (rs, re) = fault_free_restriction(&regen.kripke);
    assert_eq!(ms, rs, "fault-free state sets differ");
    assert_eq!(me, re, "fault-free transition relations differ");
}

fn check_faulty_semantics(problem: &mut ftsyn::SynthesisProblem, program: &ftsyn::guarded::Program) {
    let regen = explore(program, &problem.faults, &problem.props).expect("faulty exploration");
    let m = &regen.kripke;
    let spec_formula = problem.spec.formula(&mut problem.arena);
    let mut ck = Checker::new(m, Semantics::FaultFree);
    assert!(
        ck.holds(&problem.arena, spec_formula, m.init_states()[0]),
        "regenerated structure violates the specification at init"
    );
    let roles = m.classify();
    for s in m.state_ids() {
        if roles[s.index()] != StateRole::Perturbed {
            continue;
        }
        let mut tols = Vec::new();
        for e in m.pred(s) {
            if let TransKind::Fault(a) = e.kind {
                let t = problem.tolerance.of(a);
                if !tols.contains(&t) {
                    tols.push(t);
                }
            }
        }
        for tol in tols {
            for f in problem.label_tol_formulas(tol) {
                assert!(
                    ck.holds(&problem.arena, f, s),
                    "regenerated perturbed state {} violates its {tol:?} label",
                    m.state(s).display(&problem.props)
                );
            }
        }
    }
    // Fault closure of the regenerated structure.
    for s in m.state_ids() {
        let v = &m.state(s).props;
        for (ai, a) in problem.faults.iter().enumerate() {
            if a.enabled(v) {
                assert!(
                    m.succ(s).iter().any(|e| e.kind == TransKind::Fault(ai)),
                    "regenerated structure misses a fault edge for `{}`",
                    a.name()
                );
            }
        }
    }
}

#[test]
fn fault_free_mutex_round_trips() {
    let mut problem = mutex::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    check_fault_free_exact(&s.model, &s.program, &problem.props);
}

#[test]
fn fail_stop_mutex_round_trips() {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    check_fault_free_exact(&s.model, &s.program, &problem.props);
    check_faulty_semantics(&mut problem, &s.program);
}

#[test]
fn barrier_round_trips() {
    let mut problem = barrier::with_general_state_faults(2);
    let s = synthesize(&mut problem).unwrap_solved();
    check_fault_free_exact(&s.model, &s.program, &problem.props);
    check_faulty_semantics(&mut problem, &s.program);
}
