//! Integration test for experiment E12 (Section 5.3): faults may corrupt
//! the shared synchronization variables introduced by the extraction
//! step, and the extracted program tolerates it — a corrupted `x` merely
//! moves execution to a sibling state of the same valuation, from which
//! recovery is guaranteed; out-of-domain values are reinterpreted as the
//! default `1`.

use ftsyn::guarded::interp::explore;
use ftsyn::guarded::{BoolExpr, FaultAction, SharedCorruption};
use ftsyn::kripke::{Checker, Semantics};
use ftsyn::{problems::mutex, synthesize};

fn corrupting_fault(var: usize, how: SharedCorruption) -> FaultAction {
    FaultAction::new("corrupt-x", BoolExpr::tru(), vec![])
        .unwrap()
        .with_shared_corruption(vec![(var, how)])
}

#[test]
fn mutex_program_uses_a_shared_variable() {
    let mut problem = mutex::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(
        !s.program.shared.is_empty(),
        "the mutex model needs disambiguation (two [T1 T2] states)"
    );
}

#[test]
fn arbitrary_corruption_preserves_all_properties() {
    let mut problem = mutex::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    let fault = corrupting_fault(0, SharedCorruption::Arbitrary);
    let ex = explore(&s.program, &[fault], &problem.props).expect("explore");
    let m = &ex.kripke;
    assert!(m.fault_edge_count() > 0);

    // Safety across faults: mutual exclusion holds on all paths,
    // including those through corruptions.
    let c1 = problem.arena.prop(problem.props.id("C1").unwrap());
    let c2 = problem.arena.prop(problem.props.id("C2").unwrap());
    let both = problem.arena.and(c1, c2);
    let nboth = problem.arena.not(both);
    let ag_excl = problem.arena.ag(nboth);
    let mut ckf = Checker::new(m, Semantics::IncludeFaults);
    assert!(ckf.holds(&problem.arena, ag_excl, m.init_states()[0]));

    // Liveness from *every* reachable state (so in particular from every
    // corruption target): T1 ⇒ AF C1 and T2 ⇒ AF C2 under ⊨ₙ.
    let mut ckn = Checker::new(m, Semantics::FaultFree);
    for (a, b) in [("T1", "C1"), ("T2", "C2")] {
        let t = problem.arena.prop(problem.props.id(a).unwrap());
        let c = problem.arena.prop(problem.props.id(b).unwrap());
        let afc = problem.arena.af(c);
        let imp = problem.arena.implies(t, afc);
        let sat = ckn.eval(&problem.arena, imp).clone();
        for st in m.state_ids() {
            assert!(
                sat[st.index()],
                "state {} starves after x-corruption",
                m.state(st).display(&problem.props)
            );
        }
    }
}

#[test]
fn out_of_domain_corruption_defaults_to_one() {
    let mut problem = mutex::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    let fault = corrupting_fault(0, SharedCorruption::Value(77));
    let ex = explore(&s.program, &[fault], &problem.props).expect("explore");
    for st in ex.kripke.state_ids() {
        for e in ex.kripke.succ(st) {
            if e.kind.is_fault() {
                assert_eq!(
                    ex.kripke.state(e.to).shared[0],
                    1,
                    "out-of-domain write must be reinterpreted as 1"
                );
            }
        }
    }
}

#[test]
fn corruption_does_not_enlarge_the_valuation_space() {
    // Corrupting x never creates new valuations — only moves between
    // sibling states (Section 5.3's case analysis).
    let mut problem = mutex::fault_free(2);
    let s = synthesize(&mut problem).unwrap_solved();
    let plain = explore(&s.program, &[], &problem.props).expect("explore");
    let fault = corrupting_fault(0, SharedCorruption::Arbitrary);
    let ex = explore(&s.program, &[fault], &problem.props).expect("explore");
    let vals = |m: &ftsyn::kripke::FtKripke| -> std::collections::BTreeSet<Vec<u32>> {
        m.state_ids()
            .map(|st| m.state(st).props.iter().map(|p| p.0).collect())
            .collect()
    };
    assert_eq!(vals(&plain.kripke), vals(&ex.kripke));
}
