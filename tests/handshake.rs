//! Integration test for the producer–consumer handshake under the
//! buffer faults of Section 2.3 (omission, timing): the tolerance
//! taxonomy of Section 2.5 falls out mechanically — omission is
//! maskable, while the timing fault admits only fail-safe tolerance.

use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{Checker, Semantics};
use ftsyn::problems::handshake::{build, BufferFault};
use ftsyn::{synthesize, Tolerance};

#[test]
fn plain_handshake_synthesizes_the_four_phase_cycle() {
    let mut problem = build(BufferFault::None, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    // The four-phase cycle: every (full, ack) combination occurs.
    let full = problem.props.id("full").unwrap();
    let ack = problem.props.id("ack").unwrap();
    for (wf, wa) in [(false, false), (true, false), (true, true), (false, true)] {
        assert!(
            s.model.state_ids().any(|st| {
                let v = &s.model.state(st).props;
                v.contains(full) == wf && v.contains(ack) == wa
            }),
            "phase (full={wf}, ack={wa}) missing"
        );
    }
}

#[test]
fn omission_is_maskable() {
    let mut problem = build(BufferFault::Omission, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    // The omission lands on valuations the normal cycle also visits
    // (the loss of the *item* is invisible to a propositional spec) —
    // so every fault target is a normal state and the liveness cycle
    // keeps turning: AG AF full under ⊨ₙ.
    let full = problem.arena.prop(problem.props.id("full").unwrap());
    let af = problem.arena.af(full);
    let ag = problem.arena.ag(af);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    assert!(ck.holds(&problem.arena, ag, s.model.init_states()[0]));
}

#[test]
fn timing_admits_only_fail_safe() {
    // The delay blocks production (coupling) and only the fault's
    // release action clears it, so on fault-free paths the liveness
    // cycle is stuck: masking and nonmasking are impossible, fail-safe
    // is exactly achievable — the Section 2.5 taxonomy, mechanically.
    for (tol, solvable) in [
        (Tolerance::Masking, false),
        (Tolerance::Nonmasking, false),
        (Tolerance::FailSafe, true),
    ] {
        let mut problem = build(BufferFault::Timing, tol);
        let outcome = synthesize(&mut problem);
        assert_eq!(outcome.is_solved(), solvable, "{tol:?}");
        if let ftsyn::SynthesisOutcome::Solved(s) = outcome {
            assert!(s.verification.ok(), "{:?}", s.verification.failures);
        }
    }
}

#[test]
fn failsafe_timing_keeps_handshake_order_across_faults() {
    let mut problem = build(BufferFault::Timing, Tolerance::FailSafe);
    let s = synthesize(&mut problem).unwrap_solved();
    // Safety across fault-prone paths: the consumer never acks an empty
    // buffer out of order — check the handshake-order clause
    // AG((¬full ∧ ¬ack) ⇒ AX2 ¬ack) under plain |=.
    let full = problem.props.id("full").unwrap();
    let ack = problem.props.id("ack").unwrap();
    let (nf, na) = (
        problem.arena.neg_prop(full),
        problem.arena.neg_prop(ack),
    );
    let st = problem.arena.and(nf, na);
    let ax = problem.arena.ax(1, na);
    let cl = problem.arena.implies(st, ax);
    let ag = problem.arena.ag(cl);
    let mut ck = Checker::new(&s.model, Semantics::IncludeFaults);
    assert!(ck.holds(&problem.arena, ag, s.model.init_states()[0]));
}

#[test]
fn omission_simulation_recovers_the_cycle() {
    let mut problem = build(BufferFault::Omission, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    let full = problem.props.id("full").unwrap();
    for seed in 0..10 {
        let cfg = SimConfig {
            steps: 200,
            fault_prob: 0.2,
            max_faults: 5,
            seed,
        };
        let trace = simulate(&s.program, &problem.faults, &problem.props, &cfg);
        // After the last omission the buffer keeps being refilled:
        // `full` recurs in the post-fault suffix.
        let suffix_start = trace.last_fault.map_or(0, |i| i + 1);
        let refills = trace.valuations[suffix_start..]
            .iter()
            .filter(|v| v.contains(full))
            .count();
        assert!(refills > 0, "seed {seed}: production stalled after omission");
    }
}
