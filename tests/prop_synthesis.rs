//! Property-based tests of the synthesis pipeline over a randomized
//! family of one-process "mode machine" problems: every solved instance
//! must pass mechanical verification (soundness, Theorem 7.1.9; fault
//! closure, Theorem 7.3.2), and the tolerance lattice must be respected
//! (a masking-solvable problem is nonmasking- and fail-safe-solvable).

use ftsyn::ctl::{FormulaArena, FormulaId, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{synthesize, SynthesisOutcome, SynthesisProblem, Tolerance};
use proptest::prelude::*;

/// Blueprint of a random one-process synthesis problem over `k` one-hot
/// modes.
#[derive(Clone, Debug)]
struct Blueprint {
    k: usize,
    /// Per mode: required AX successor mode (None = unconstrained).
    ax_next: Vec<Option<usize>>,
    /// Liveness clauses `mode a ⇒ AF mode b`.
    af_clauses: Vec<(usize, usize)>,
    /// Fault: when in mode `guard`, jump to mode `target`.
    fault: Option<(usize, usize)>,
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    (2usize..4)
        .prop_flat_map(|k| {
            let ax = proptest::collection::vec(proptest::option::of(0..k), k..=k);
            let afs = proptest::collection::vec((0..k, 0..k), 0..3);
            let fault = proptest::option::of((0..k, 0..k));
            (Just(k), ax, afs, fault)
        })
        .prop_map(|(k, ax_next, af_clauses, fault)| Blueprint {
            k,
            ax_next,
            af_clauses,
            fault,
        })
}

fn build_problem(bp: &Blueprint, tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let modes: Vec<_> = (0..bp.k)
        .map(|m| props.add(format!("m{m}"), Owner::Process(0)).unwrap())
        .collect();
    let mut arena = FormulaArena::new(1);
    let fm: Vec<FormulaId> = modes.iter().map(|&p| arena.prop(p)).collect();

    let mut globals = Vec::new();
    // Exactly one mode.
    let any = arena.or_all(fm.clone());
    globals.push(any);
    for a in 0..bp.k {
        let others: Vec<FormulaId> = (0..bp.k).filter(|&b| b != a).map(|b| fm[b]).collect();
        let disj = arena.or_all(others);
        let ndisj = arena.not(disj);
        let cl = arena.implies(fm[a], ndisj);
        globals.push(cl);
    }
    // AX movement constraints.
    for (a, nxt) in bp.ax_next.iter().enumerate() {
        if let Some(b) = nxt {
            let ax = arena.ax(0, fm[*b]);
            let cl = arena.implies(fm[a], ax);
            globals.push(cl);
        }
    }
    // AF liveness clauses.
    for &(a, b) in &bp.af_clauses {
        let af = arena.af(fm[b]);
        let cl = arena.implies(fm[a], af);
        globals.push(cl);
    }
    // Progress.
    let t = arena.tru();
    let ext = arena.ex_all(t);
    globals.push(ext);
    let global = arena.and_all(globals);
    let init = fm[0];
    let spec = Spec::new(&mut arena, init, global);

    let faults = match bp.fault {
        None => vec![],
        Some((g, target)) => {
            let mut assigns = vec![(modes[target], PropAssign::True)];
            for (m, &p) in modes.iter().enumerate() {
                if m != target {
                    assigns.push((p, PropAssign::False));
                }
            }
            vec![FaultAction::new("jump", BoolExpr::Prop(modes[g]), assigns).unwrap()]
        }
    };
    SynthesisProblem::new(arena, props, spec, faults, tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every solved instance passes mechanical verification.
    #[test]
    fn solved_instances_verify(bp in blueprint(), tol_pick in 0..3usize) {
        let tol = [Tolerance::Masking, Tolerance::Nonmasking, Tolerance::FailSafe][tol_pick];
        let mut problem = build_problem(&bp, tol);
        if let SynthesisOutcome::Solved(s) = synthesize(&mut problem) {
            prop_assert!(
                s.verification.ok(),
                "verification failed for {:?} with {:?}: {:?}",
                bp, tol, s.verification.failures
            );
        }
    }

    /// Masking-solvable implies nonmasking- and fail-safe-solvable
    /// (the masking solution itself witnesses the weaker tolerances;
    /// completeness must therefore find one).
    #[test]
    fn tolerance_lattice_respected(bp in blueprint()) {
        let mut masking = build_problem(&bp, Tolerance::Masking);
        if synthesize(&mut masking).is_solved() {
            for tol in [Tolerance::Nonmasking, Tolerance::FailSafe] {
                let mut weaker = build_problem(&bp, tol);
                prop_assert!(
                    synthesize(&mut weaker).is_solved(),
                    "masking-solvable {:?} must be {:?}-solvable",
                    bp, tol
                );
            }
        }
    }

    /// Fault-free synthesis yields purely normal models, and the outcome
    /// is deterministic across repeated runs.
    #[test]
    fn fault_free_models_are_normal_and_deterministic(bp in blueprint()) {
        let bp = Blueprint { fault: None, ..bp.clone() };
        let mut p1 = build_problem(&bp, Tolerance::Masking);
        let mut p2 = build_problem(&bp, Tolerance::Masking);
        let o1 = synthesize(&mut p1);
        let o2 = synthesize(&mut p2);
        prop_assert_eq!(o1.is_solved(), o2.is_solved());
        if let (SynthesisOutcome::Solved(s1), SynthesisOutcome::Solved(s2)) = (o1, o2) {
            prop_assert_eq!(s1.stats.model_states, s2.stats.model_states);
            prop_assert_eq!(s1.stats.alive_and, s2.stats.alive_and);
            prop_assert_eq!(s1.stats.fault_transitions, 0);
            let roles = s1.model.classify();
            prop_assert!(roles.iter().all(|r| *r == ftsyn::kripke::StateRole::Normal));
        }
    }

    /// The extracted program regenerates the fault-free portion exactly
    /// (round-trip property on random instances).
    #[test]
    fn extraction_round_trips(bp in blueprint()) {
        let mut problem = build_problem(&bp, Tolerance::Nonmasking);
        if let SynthesisOutcome::Solved(s) = synthesize(&mut problem) {
            let regen = ftsyn::guarded::interp::explore(&s.program, &[], &problem.props)
                .expect("fault-free exploration cannot fail");
            // Same fault-free state count and initial valuation.
            let roles = s.model.classify();
            let normal: std::collections::BTreeSet<(Vec<u32>, Vec<u32>)> = s
                .model
                .state_ids()
                .filter(|st| roles[st.index()] == ftsyn::kripke::StateRole::Normal)
                .map(|st| (
                    s.model.state(st).props.iter().map(|p| p.0).collect(),
                    s.model.state(st).shared.clone(),
                ))
                .collect();
            let regen_states: std::collections::BTreeSet<(Vec<u32>, Vec<u32>)> = regen
                .kripke
                .state_ids()
                .map(|st| (
                    regen.kripke.state(st).props.iter().map(|p| p.0).collect(),
                    regen.kripke.state(st).shared.clone(),
                ))
                .collect();
            prop_assert_eq!(normal, regen_states);
        }
    }
}
