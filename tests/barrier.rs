//! Integration test for experiments E5–E6: barrier synchronization under
//! general state failures with nonmasking (self-stabilizing) tolerance
//! (Section 6.2, Figures 10–11).

use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{Checker, PropSet, Semantics, StateRole};
use ftsyn::{problems::barrier, synthesize, Tolerance};

fn solve() -> (ftsyn::SynthesisProblem, Box<ftsyn::Synthesized>) {
    let mut problem = barrier::with_general_state_faults(2);
    assert_eq!(
        problem.tolerance,
        ftsyn::ToleranceAssignment::Uniform(Tolerance::Nonmasking)
    );
    let solved = synthesize(&mut problem).unwrap_solved();
    (problem, solved)
}

/// The cyclic phase position of a process in a valuation, if one-hot.
fn phase(problem: &ftsyn::SynthesisProblem, v: &PropSet, i: usize) -> Option<usize> {
    let names = ["SA", "EA", "SB", "EB"];
    let mut found = None;
    for (k, n) in names.iter().enumerate() {
        let p = problem.props.id(&format!("{n}{}", i + 1)).unwrap();
        if v.contains(p) {
            if found.is_some() {
                return None;
            }
            found = Some(k);
        }
    }
    found
}

#[test]
fn synthesis_succeeds_and_verifies() {
    let (_, s) = solve();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert!(s.verification.perturbed_count > 0);
}

#[test]
fn normal_region_is_the_eight_synchronized_valuations() {
    // Figure 10's fault-free sub-structure has 8 states: the two
    // processes are at equal phases or one phase apart (never two).
    let (problem, s) = solve();
    let roles = s.model.classify();
    let mut vals: Vec<PropSet> = Vec::new();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Normal {
            let v = s.model.state(st).props.clone();
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
    }
    assert_eq!(vals.len(), 8, "Figure 10's fault-free portion");
    for v in &vals {
        let p1 = phase(&problem, v, 0).expect("one-hot");
        let p2 = phase(&problem, v, 1).expect("one-hot");
        let d = (4 + p1 as i32 - p2 as i32) % 4;
        assert!(
            d == 0 || d == 1 || d == 3,
            "normal states are at most one phase apart: {}",
            v.display(&problem.props)
        );
    }
}

#[test]
fn perturbed_states_are_two_phases_apart() {
    // The four perturbed valuations of Figure 10 are exactly the pairs
    // two phases apart (they violate barrier clauses 7/8).
    let (problem, s) = solve();
    let roles = s.model.classify();
    let mut vals: Vec<PropSet> = Vec::new();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Perturbed {
            let v = s.model.state(st).props.clone();
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
    }
    // Every perturbed valuation is one-hot (general state faults move a
    // process to a definite local state); those violating the barrier
    // condition are the distance-2 pairs.
    let two_apart: Vec<&PropSet> = vals
        .iter()
        .filter(|v| {
            let p1 = phase(&problem, v, 0).expect("one-hot");
            let p2 = phase(&problem, v, 1).expect("one-hot");
            (4 + p1 as i32 - p2 as i32) % 4 == 2
        })
        .collect();
    assert_eq!(two_apart.len(), 4, "Figure 10's four perturbed states");
}

#[test]
fn nonmasking_recovery_reaches_the_normal_region() {
    // AF AG(global) holds at every perturbed state under ⊨ₙ — checked by
    // the verifier; here we check the concrete consequence: from every
    // perturbed state, every fault-free path reaches a state whose
    // valuation is at most one phase apart (and stays barrier-correct).
    let (mut problem, s) = solve();
    let ag_global = {
        let g = problem.spec.global;
        problem.arena.ag(g)
    };
    let af_ag = problem.arena.af(ag_global);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    let roles = s.model.classify();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Perturbed {
            assert!(
                ck.holds(&problem.arena, af_ag, st),
                "no convergence from {}",
                s.model.state(st).display(&problem.props)
            );
        }
    }
}

#[test]
fn masking_tolerance_is_impossible_for_general_state_faults() {
    // A general state fault immediately violates the barrier conditions,
    // so masking tolerance (safety NOW) cannot be achieved — the paper
    // accordingly asks for nonmasking. Mechanical impossibility check:
    let mut problem = barrier::with_general_state_faults(2);
    problem.tolerance = ftsyn::ToleranceAssignment::Uniform(Tolerance::Masking);
    let outcome = synthesize(&mut problem);
    assert!(!outcome.is_solved());
}

#[test]
fn recovery_transitions_do_not_change_normal_behavior() {
    // "These recovery-transitions do not permit the fault-tolerant
    // program to generate any new states or transitions under normal
    // (fault-free) operation" (Section 6.2): the fault-free reachable
    // region of the synthesized model consists of normal states only.
    let (_, s) = solve();
    let roles = s.model.classify();
    // classify() already defines Normal = fault-free reachable; check
    // that every program transition from a normal state stays normal.
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Normal {
            for e in s.model.succ(st) {
                if !e.kind.is_fault() {
                    assert_eq!(roles[e.to.index()], StateRole::Normal);
                }
            }
        }
    }
}

#[test]
fn self_stabilization_under_random_corruption() {
    // Inject random general-state faults; after the last fault the
    // program must converge to barrier-correct behavior forever.
    let (problem, s) = solve();
    let sa1 = problem.props.id("SA1").unwrap();
    let sb1 = problem.props.id("SB1").unwrap();
    let ea1 = problem.props.id("EA1").unwrap();
    let eb1 = problem.props.id("EB1").unwrap();
    let sa2 = problem.props.id("SA2").unwrap();
    let sb2 = problem.props.id("SB2").unwrap();
    let ea2 = problem.props.id("EA2").unwrap();
    let eb2 = problem.props.id("EB2").unwrap();
    let ok = |v: &PropSet| {
        let bad = (v.contains(sa1) && v.contains(sb2))
            || (v.contains(sa2) && v.contains(sb1))
            || (v.contains(ea1) && v.contains(eb2))
            || (v.contains(ea2) && v.contains(eb1));
        !bad
    };
    let mut converged_runs = 0;
    for seed in 0..20 {
        let cfg = SimConfig {
            steps: 300,
            fault_prob: 0.15,
            max_faults: 5,
            seed,
        };
        let trace = simulate(&s.program, &problem.faults, &problem.props, &cfg);
        // Allow a settling window of up to the state-space diameter.
        if let Some(conv) = trace.eventually_always_after_faults(10, ok) {
            assert!(conv, "seed {seed}: no convergence after faults stopped");
            converged_runs += 1;
        }
    }
    assert!(converged_runs >= 10, "most runs must be observable");
}
