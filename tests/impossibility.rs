//! Integration test for experiment E7: mechanical impossibility results
//! (Section 6.3) — completeness as a negative oracle.

use ftsyn::ctl::{FormulaArena, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{problems::barrier, problems::mutex, synthesize, SynthesisProblem, Tolerance};

#[test]
fn barrier_with_fail_stop_and_nonmasking_is_impossible() {
    // Section 6.3: if P1 may stay down forever, the barrier problem has
    // no nonmasking-tolerant solution — the progress of P2 requires the
    // concomitant progress of P1.
    let mut problem = barrier::with_fail_stop_impossible(2);
    let outcome = synthesize(&mut problem);
    match outcome {
        ftsyn::SynthesisOutcome::Impossible(imp) => {
            // The whole tableau must cascade away from the root.
            assert!(imp.stats.deletion.total() > 0);
            assert!(imp.stats.tableau_nodes > 0);
        }
        ftsyn::SynthesisOutcome::Solved(_) => {
            panic!("Section 6.3 requires an impossibility result")
        }
        ftsyn::SynthesisOutcome::Aborted(_) => {
            unreachable!("ungoverned synthesis cannot abort")
        }
    }
}

#[test]
fn the_solvable_counterpart_is_indeed_solvable() {
    // Sanity for the test above: the same barrier problem under general
    // state faults (which are always recoverable) is solvable.
    let mut problem = barrier::with_general_state_faults(2);
    assert!(synthesize(&mut problem).is_solved());
}

#[test]
fn unguarded_repair_into_critical_section_is_impossible() {
    // Footnote 11 justified mechanically: if the repair fault may revive
    // P1 directly into C1 regardless of P2, the fault can fire in a
    // state where C2 holds, producing the perturbed valuation [C1 C2] —
    // propositionally inconsistent with the masking label AG ¬(C1∧C2) —
    // and the deletion rules cascade to the root.
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    // Replace the guarded repair-to-C actions with unguarded ones.
    let mut faults = problem.faults.clone();
    for f in &mut faults {
        if f.name().starts_with("repair") && f.name().ends_with("to-C") {
            let assigns = f.assigns().to_vec();
            let d_guard = match f.guard() {
                BoolExpr::And(parts) => parts[0].clone(),
                g => g.clone(),
            };
            *f = FaultAction::new(f.name().to_owned(), d_guard, assigns).unwrap();
        }
    }
    assert!(
        faults.iter().any(|f| f.name().ends_with("to-C")),
        "repair actions present"
    );
    problem.faults = faults;
    let outcome = synthesize(&mut problem);
    assert!(!outcome.is_solved(), "unguarded repair must be impossible");
}

#[test]
fn plainly_unsatisfiable_specs_are_impossible_without_faults() {
    // The degenerate case: an unsatisfiable problem specification is
    // reported impossible by the same mechanism (no fault needed).
    let mut props = PropTable::new();
    props.add("p", Owner::Process(0)).unwrap();
    let mut arena = FormulaArena::new(1);
    let p = arena.prop(props.id("p").unwrap());
    let np = arena.not(p);
    let init = p;
    let afnp = arena.af(np);
    let agp = arena.ag(p);
    let ext = {
        let t = arena.tru();
        arena.ex_all(t)
    };
    let agext = arena.ag(ext);
    let tail = arena.and(afnp, agext);
    // AG p ∧ AF ¬p is unsatisfiable.
    let global = arena.and(agp, tail);
    let spec = Spec::new(&mut arena, init, global);
    let mut problem = SynthesisProblem::new(arena, props, spec, vec![], Tolerance::Masking);
    assert!(!synthesize(&mut problem).is_solved());
}

#[test]
fn tolerance_strength_ordering_on_one_problem() {
    // One fault, three tolerances: a fault that truthifies `broken`
    // (coupling pins ¬done while broken, forever). Masking needs the
    // pending AF done — impossible; nonmasking needs it eventually —
    // still impossible (broken is permanent); fail-safe drops the
    // liveness part — solvable.
    for (tol, solvable) in [
        (Tolerance::Masking, false),
        (Tolerance::Nonmasking, false),
        (Tolerance::FailSafe, true),
    ] {
        let mut problem = broken_task_problem(tol);
        let outcome = synthesize(&mut problem);
        assert_eq!(
            outcome.is_solved(),
            solvable,
            "{tol:?} should be {}",
            if solvable { "solvable" } else { "impossible" }
        );
        if let ftsyn::SynthesisOutcome::Solved(s) = outcome {
            assert!(s.verification.ok(), "{:?}", s.verification.failures);
        }
    }
}

/// A single-process task: `idle → try → done → idle` with
/// `AG(try ⇒ AF done)`. The fault breaks the machine in the `try` state;
/// the coupling makes `broken` permanent and incompatible with `done`.
fn broken_task_problem(tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let idle = props.add("idle", Owner::Process(0)).unwrap();
    let try_ = props.add("try", Owner::Process(0)).unwrap();
    let done = props.add("done", Owner::Process(0)).unwrap();
    let broken = props.add_aux("broken", Owner::Process(0)).unwrap();
    let mut arena = FormulaArena::new(1);
    let (fi, ft, fd, fb) = (
        arena.prop(idle),
        arena.prop(try_),
        arena.prop(done),
        arena.prop(broken),
    );
    let mut globals = Vec::new();
    // Exactly one of idle/try/done: at least one …
    let td = arena.or(ft, fd);
    let some_state = arena.or(fi, td);
    globals.push(some_state);
    // … and at most one.
    for (a, b1, b2) in [(fi, ft, fd), (ft, fi, fd), (fd, fi, ft)] {
        let or = arena.or(b1, b2);
        let nor = arena.not(or);
        let cl = arena.implies(a, nor);
        globals.push(cl);
    }
    // Movement: idle goes to try; done goes to idle.
    let axt = arena.ax(0, ft);
    let cl = arena.implies(fi, axt);
    globals.push(cl);
    let axi = arena.ax(0, fi);
    let cl = arena.implies(fd, axi);
    globals.push(cl);
    // Liveness: try leads to done.
    let afd = arena.af(fd);
    let cl = arena.implies(ft, afd);
    globals.push(cl);
    // Progress.
    let t = arena.tru();
    let ext = arena.ex_all(t);
    globals.push(ext);
    let global = arena.and_all(globals);
    let init = {
        let nb = arena.neg_prop(broken);
        arena.and(fi, nb)
    };
    // Coupling: broken is permanent and forbids done.
    let agb = arena.ag(fb);
    let c1 = arena.implies(fb, agb);
    let nd = arena.not(fd);
    let c2 = arena.implies(fb, nd);
    let coupling = arena.and(c1, c2);
    let spec = Spec::with_coupling(init, global, coupling);
    let fault = FaultAction::new(
        "break-in-try",
        BoolExpr::And(vec![BoolExpr::Prop(try_), BoolExpr::not_prop(broken)]),
        vec![(broken, PropAssign::True)],
    )
    .unwrap();
    SynthesisProblem::new(arena, props, spec, vec![fault], tol)
}
