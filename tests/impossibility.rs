//! Integration test for experiment E7: mechanical impossibility results
//! (Section 6.3) — completeness as a negative oracle.

use ftsyn::ctl::{FormulaArena, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::{
    problems::barrier, problems::mutex, synthesize, synthesize_with_engine, Engine,
    SynthesisProblem, ThreadPlan, Tolerance,
};

/// Runs `problem` through the CEGIS backend (ungoverned, 1 thread).
fn cegis(problem: &mut SynthesisProblem) -> ftsyn::SynthesisOutcome {
    synthesize_with_engine(problem, Engine::Cegis, ThreadPlan::uniform(1), None)
}

#[test]
fn barrier_with_fail_stop_and_nonmasking_is_impossible() {
    // Section 6.3: if P1 may stay down forever, the barrier problem has
    // no nonmasking-tolerant solution — the progress of P2 requires the
    // concomitant progress of P1.
    let mut problem = barrier::with_fail_stop_impossible(2);
    let outcome = synthesize(&mut problem);
    match outcome {
        ftsyn::SynthesisOutcome::Impossible(imp) => {
            // The whole tableau must cascade away from the root.
            assert!(imp.stats.deletion.total() > 0);
            assert!(imp.stats.tableau_nodes > 0);
        }
        ftsyn::SynthesisOutcome::Solved(_) => {
            panic!("Section 6.3 requires an impossibility result")
        }
        ftsyn::SynthesisOutcome::Aborted(_) => {
            unreachable!("ungoverned synthesis cannot abort")
        }
    }
}

/// Impossibility agreement: the CEGIS backend must return `Impossible`
/// on exactly the cases the tableau proves impossible — its negative
/// path is itself a certificate (an empty admissible universe, or a
/// deleted tableau root), never a bound artifact.
#[test]
fn both_engines_agree_the_barrier_case_is_impossible() {
    let mut problem = barrier::with_fail_stop_impossible(2);
    let outcome = cegis(&mut problem);
    assert!(
        matches!(outcome, ftsyn::SynthesisOutcome::Impossible(_)),
        "CEGIS must agree with the tableau impossibility"
    );
}

#[test]
fn both_engines_agree_on_the_unguarded_repair_impossibility() {
    let mut problem = unguarded_repair_problem();
    assert!(!cegis(&mut problem).is_solved());
}

#[test]
fn both_engines_agree_on_the_tolerance_strength_ordering() {
    // The masking/nonmasking/fail-safe ladder of
    // `tolerance_strength_ordering_on_one_problem`, judged by the CEGIS
    // backend: same split between solvable and impossible.
    for (tol, solvable) in [
        (Tolerance::Masking, false),
        (Tolerance::Nonmasking, false),
        (Tolerance::FailSafe, true),
    ] {
        let mut problem = broken_task_problem(tol);
        let outcome = cegis(&mut problem);
        let what = match &outcome {
            ftsyn::SynthesisOutcome::Solved(_) => "Solved".to_owned(),
            ftsyn::SynthesisOutcome::Impossible(_) => "Impossible".to_owned(),
            ftsyn::SynthesisOutcome::Aborted(a) => format!("Aborted({})", a.reason),
        };
        assert_eq!(
            outcome.is_solved(),
            solvable,
            "CEGIS disagrees with the tableau on {tol:?}: {what}"
        );
        if let ftsyn::SynthesisOutcome::Solved(s) = outcome {
            assert!(s.verification.ok(), "{:?}", s.verification.failures);
        }
    }
}

/// The bound-wins regression: four dining philosophers have a small
/// deterministic solution, but the tableau for the conjoined conflict
/// spec is large (the state explosion the second backend exists for).
/// The CEGIS engine must find a verified program from a few dozen
/// candidates without ever building that tableau; the wall-clock
/// head-to-head is pinned in bench JSON (`backend_comparison`).
#[test]
fn cegis_bound_wins_on_philosophers4() {
    let mut problem = mutex::dining_philosophers(4);
    let s = cegis(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert!(s.artifacts.is_none(), "no tableau on the CEGIS solved path");
    let p = &s.stats.cegis_profile;
    assert_eq!(p.certificate_nodes, 0, "solved without a certificate build");
    assert!(
        p.candidates <= 256,
        "philosophers4 must stay a small search ({} candidates)",
        p.candidates
    );
}

#[test]
fn the_solvable_counterpart_is_indeed_solvable() {
    // Sanity for the test above: the same barrier problem under general
    // state faults (which are always recoverable) is solvable.
    let mut problem = barrier::with_general_state_faults(2);
    assert!(synthesize(&mut problem).is_solved());
}

#[test]
fn unguarded_repair_into_critical_section_is_impossible() {
    // Footnote 11 justified mechanically: if the repair fault may revive
    // P1 directly into C1 regardless of P2, the fault can fire in a
    // state where C2 holds, producing the perturbed valuation [C1 C2] —
    // propositionally inconsistent with the masking label AG ¬(C1∧C2) —
    // and the deletion rules cascade to the root.
    let mut problem = unguarded_repair_problem();
    let outcome = synthesize(&mut problem);
    assert!(!outcome.is_solved(), "unguarded repair must be impossible");
}

/// mutex2-failstop with the guarded repair-to-C actions replaced by
/// unguarded ones (the footnote-11 counterexample).
fn unguarded_repair_problem() -> SynthesisProblem {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let mut faults = problem.faults.clone();
    for f in &mut faults {
        if f.name().starts_with("repair") && f.name().ends_with("to-C") {
            let assigns = f.assigns().to_vec();
            let d_guard = match f.guard() {
                BoolExpr::And(parts) => parts[0].clone(),
                g => g.clone(),
            };
            *f = FaultAction::new(f.name().to_owned(), d_guard, assigns).unwrap();
        }
    }
    assert!(
        faults.iter().any(|f| f.name().ends_with("to-C")),
        "repair actions present"
    );
    problem.faults = faults;
    problem
}

#[test]
fn plainly_unsatisfiable_specs_are_impossible_without_faults() {
    // The degenerate case: an unsatisfiable problem specification is
    // reported impossible by the same mechanism (no fault needed).
    let mut props = PropTable::new();
    props.add("p", Owner::Process(0)).unwrap();
    let mut arena = FormulaArena::new(1);
    let p = arena.prop(props.id("p").unwrap());
    let np = arena.not(p);
    let init = p;
    let afnp = arena.af(np);
    let agp = arena.ag(p);
    let ext = {
        let t = arena.tru();
        arena.ex_all(t)
    };
    let agext = arena.ag(ext);
    let tail = arena.and(afnp, agext);
    // AG p ∧ AF ¬p is unsatisfiable.
    let global = arena.and(agp, tail);
    let spec = Spec::new(&mut arena, init, global);
    let mut problem = SynthesisProblem::new(arena, props, spec, vec![], Tolerance::Masking);
    assert!(!synthesize(&mut problem).is_solved());
}

#[test]
fn tolerance_strength_ordering_on_one_problem() {
    // One fault, three tolerances: a fault that truthifies `broken`
    // (coupling pins ¬done while broken, forever). Masking needs the
    // pending AF done — impossible; nonmasking needs it eventually —
    // still impossible (broken is permanent); fail-safe drops the
    // liveness part — solvable.
    for (tol, solvable) in [
        (Tolerance::Masking, false),
        (Tolerance::Nonmasking, false),
        (Tolerance::FailSafe, true),
    ] {
        let mut problem = broken_task_problem(tol);
        let outcome = synthesize(&mut problem);
        assert_eq!(
            outcome.is_solved(),
            solvable,
            "{tol:?} should be {}",
            if solvable { "solvable" } else { "impossible" }
        );
        if let ftsyn::SynthesisOutcome::Solved(s) = outcome {
            assert!(s.verification.ok(), "{:?}", s.verification.failures);
        }
    }
}

/// A single-process task: `idle → try → done → idle` with
/// `AG(try ⇒ AF done)`. The fault breaks the machine in the `try` state;
/// the coupling makes `broken` permanent and incompatible with `done`.
fn broken_task_problem(tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let idle = props.add("idle", Owner::Process(0)).unwrap();
    let try_ = props.add("try", Owner::Process(0)).unwrap();
    let done = props.add("done", Owner::Process(0)).unwrap();
    let broken = props.add_aux("broken", Owner::Process(0)).unwrap();
    let mut arena = FormulaArena::new(1);
    let (fi, ft, fd, fb) = (
        arena.prop(idle),
        arena.prop(try_),
        arena.prop(done),
        arena.prop(broken),
    );
    let mut globals = Vec::new();
    // Exactly one of idle/try/done: at least one …
    let td = arena.or(ft, fd);
    let some_state = arena.or(fi, td);
    globals.push(some_state);
    // … and at most one.
    for (a, b1, b2) in [(fi, ft, fd), (ft, fi, fd), (fd, fi, ft)] {
        let or = arena.or(b1, b2);
        let nor = arena.not(or);
        let cl = arena.implies(a, nor);
        globals.push(cl);
    }
    // Movement: idle goes to try; done goes to idle.
    let axt = arena.ax(0, ft);
    let cl = arena.implies(fi, axt);
    globals.push(cl);
    let axi = arena.ax(0, fi);
    let cl = arena.implies(fd, axi);
    globals.push(cl);
    // Liveness: try leads to done.
    let afd = arena.af(fd);
    let cl = arena.implies(ft, afd);
    globals.push(cl);
    // Progress.
    let t = arena.tru();
    let ext = arena.ex_all(t);
    globals.push(ext);
    let global = arena.and_all(globals);
    let init = {
        let nb = arena.neg_prop(broken);
        arena.and(fi, nb)
    };
    // Coupling: broken is permanent and forbids done.
    let agb = arena.ag(fb);
    let c1 = arena.implies(fb, agb);
    let nd = arena.not(fd);
    let c2 = arena.implies(fb, nd);
    let coupling = arena.and(c1, c2);
    let spec = Spec::with_coupling(init, global, coupling);
    let fault = FaultAction::new(
        "break-in-try",
        BoolExpr::And(vec![BoolExpr::Prop(try_), BoolExpr::not_prop(broken)]),
        vec![(broken, PropAssign::True)],
    )
    .unwrap();
    SynthesisProblem::new(arena, props, spec, vec![fault], tol)
}

