//! Integration test for experiment E1–E4: two-process mutual exclusion
//! subject to fail-stop failures, masking tolerance (Section 6.1,
//! Figures 3–9).

use ftsyn::ctl::Owner;
use ftsyn::guarded::sim::{simulate, SimConfig};
use ftsyn::kripke::{Checker, PropSet, Semantics, StateRole, TransKind};
use ftsyn::{problems::mutex, synthesize, Tolerance};

fn solve() -> (ftsyn::SynthesisProblem, Box<ftsyn::Synthesized>) {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let outcome = synthesize(&mut problem);
    let solved = outcome.unwrap_solved();
    (problem, solved)
}

#[test]
fn synthesis_succeeds_and_verifies() {
    let (_, s) = solve();
    assert!(
        s.verification.ok(),
        "mechanical verification failed: {:?}",
        s.verification.failures
    );
    assert!(s.verification.perturbed_count > 0, "faults must perturb");
}

#[test]
fn normal_states_cover_the_fault_free_mutex_valuations() {
    // The fault-free portion (above Figure 8's line) visits exactly the
    // valuations of the Emerson-Clarke mutex model: both processes range
    // over {N,T,C} minus the mutual exclusion violation [C1 C2].
    let (problem, s) = solve();
    let roles = s.model.classify();
    let mut normal_valuations: Vec<PropSet> = Vec::new();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Normal {
            let v = s.model.state(st).props.clone();
            if !normal_valuations.contains(&v) {
                normal_valuations.push(v);
            }
        }
    }
    // The synthesized solution visits the Emerson-Clarke region: it need
    // not visit all 8 legal valuations (the method may pick an
    // asymmetric solution), but it must include the initial state, both
    // critical-section entries, the contended [T1 T2] valuation, and
    // never the mutual exclusion violation [C1 C2].
    assert!(normal_valuations.len() >= 6, "{}", normal_valuations.len());
    let val = |names: &[&str]| {
        PropSet::from_iter_with_capacity(
            problem.props.len(),
            names.iter().map(|n| problem.props.id(n).unwrap()),
        )
    };
    for must in [
        val(&["N1", "N2"]),
        val(&["T1", "T2"]),
        val(&["C1", "T2"]),
        val(&["T1", "C2"]),
    ] {
        assert!(normal_valuations.contains(&must));
    }
    let c1 = problem.props.id("C1").unwrap();
    let c2 = problem.props.id("C2").unwrap();
    for v in &normal_valuations {
        assert!(!(v.contains(c1) && v.contains(c2)));
    }
    // The contended valuation needs disambiguation: a shared variable
    // exists and [T1 T2] occurs as (at least) two distinct states.
    let roles2 = s.model.classify();
    let t1t2 = val(&["T1", "T2"]);
    let copies = s
        .model
        .state_ids()
        .filter(|st| {
            roles2[st.index()] == StateRole::Normal && s.model.state(*st).props == t1t2
        })
        .count();
    assert!(copies >= 2, "the paper's two [T1 T2] states");
}

#[test]
fn mutual_exclusion_holds_even_across_faults() {
    // Masking tolerance: the safety part holds at every reachable state,
    // including perturbed ones — check AG ¬(C1 ∧ C2) with fault
    // transitions included in the paths.
    let (mut problem, s) = solve();
    let c1p = problem.props.id("C1").unwrap();
    let c2p = problem.props.id("C2").unwrap();
    let c1 = problem.arena.prop(c1p);
    let c2 = problem.arena.prop(c2p);
    let both = problem.arena.and(c1, c2);
    let excl = problem.arena.not(both);
    let ag = problem.arena.ag(excl);
    let mut ck = Checker::new(&s.model, Semantics::IncludeFaults);
    let init = s.model.init_states()[0];
    assert!(ck.holds(&problem.arena, ag, init));
}

#[test]
fn starvation_freedom_holds_at_perturbed_states() {
    // Masking: AG(T2 ⇒ AF C2) holds at perturbed states too (under ⊨ₙ),
    // i.e. the surviving process is not starved by the other's failure.
    let (mut problem, s) = solve();
    let t2p = problem.props.id("T2").unwrap();
    let c2p = problem.props.id("C2").unwrap();
    let t2 = problem.arena.prop(t2p);
    let c2 = problem.arena.prop(c2p);
    let afc2 = problem.arena.af(c2);
    let imp = problem.arena.implies(t2, afc2);
    let ag = problem.arena.ag(imp);
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    let roles = s.model.classify();
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Perturbed {
            assert!(
                ck.holds(&problem.arena, ag, st),
                "perturbed state {} starves P2",
                s.model.state(st).display(&problem.props)
            );
        }
    }
}

#[test]
fn down_states_exist_and_are_left_by_repair_faults_only_or_self_loops() {
    let (problem, s) = solve();
    let d1 = problem.props.id("D1").unwrap();
    let mut saw_down = false;
    for st in s.model.state_ids() {
        if !s.model.state(st).props.contains(d1) {
            continue;
        }
        saw_down = true;
        // Program transitions out of a D1 state must keep D1 except for
        // P1's own moves (the spec does not forbid self-repair, but
        // other processes can never change D1 — coupling clause 3).
        for e in s.model.succ(st) {
            if e.kind == TransKind::Proc(1) {
                assert!(
                    s.model.state(e.to).props.contains(d1),
                    "P2's move revived P1"
                );
            }
        }
    }
    assert!(saw_down, "fail-stop faults must produce down states");
}

#[test]
fn extracted_program_shape() {
    let (problem, s) = solve();
    assert_eq!(s.program.processes.len(), 2);
    for p in &s.program.processes {
        // Local states: N, T, C, D.
        assert_eq!(
            p.states.len(),
            4,
            "P{} locals: {:?}",
            p.index + 1,
            p.states.iter().map(|l| &l.name).collect::<Vec<_>>()
        );
        assert!(!p.arcs.is_empty());
    }
    // The [T1 T2] valuation is duplicated in the Emerson-Clarke model, so
    // at least one shared variable exists.
    assert!(
        !s.program.shared.is_empty(),
        "expected a disambiguating shared variable"
    );
    // Render without panicking.
    let txt = s.program.display(&problem.props);
    assert!(txt.contains("process P1:"));
    assert!(txt.contains("process P2:"));
}

#[test]
fn simulation_never_violates_mutual_exclusion() {
    let (problem, s) = solve();
    let c1 = problem.props.id("C1").unwrap();
    let c2 = problem.props.id("C2").unwrap();
    for seed in 0..20 {
        let cfg = SimConfig {
            steps: 400,
            fault_prob: 0.2,
            max_faults: 6,
            seed,
        };
        let trace = simulate(&s.program, &problem.faults, &problem.props, &cfg);
        assert!(
            trace.always(|v| !(v.contains(c1) && v.contains(c2))),
            "seed {seed}: mutual exclusion violated under fault injection"
        );
        // The synthesized program never deadlocks (AG EX true).
        assert!(
            !trace
                .steps
                .iter()
                .any(|k| matches!(k, ftsyn::guarded::sim::SimStep::Deadlock)),
            "seed {seed}: deadlock"
        );
    }
}

#[test]
fn fault_free_variant_matches_emerson_clarke_region() {
    // E3's upper half: the fault-free mutex synthesis (no faults at all).
    let mut problem = mutex::fault_free(2);
    let outcome = synthesize(&mut problem);
    let s = outcome.unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert_eq!(s.stats.fault_transitions, 0);
    let roles = s.model.classify();
    assert!(roles.iter().all(|r| *r == StateRole::Normal));
    // No auxiliary propositions in the fault-free problem.
    assert!(problem.props.iter().all(|p| !problem.props.is_aux(p)));
    assert!(problem
        .props
        .iter()
        .all(|p| matches!(problem.props.owner(p), Owner::Process(_))));
}
