//! Golden-statistics regression for experiment E1–E2 of EXPERIMENTS.md:
//! two-process mutual exclusion with fail-stop faults and masking
//! tolerance. The tableau size, per-rule deletion counts, and alive
//! node counts are pinned to the published numbers, and the timing
//! invariant `elapsed = Σ phase timings + residual` is checked.

use ftsyn::problems::mutex;
use ftsyn::tableau::DeletionStats;
use ftsyn::{synthesize, Tolerance};

#[test]
fn mutex_fail_stop_masking_pins_published_numbers() {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    assert_eq!(problem.faults.len(), 8, "E1: fault actions");
    let s = synthesize(&mut problem).unwrap_solved();
    assert_eq!(s.stats.tableau_nodes, 198, "E2: tableau nodes");
    assert_eq!(
        s.stats.deletion,
        DeletionStats {
            prop_inconsistent: 0,
            or_without_children: 2,
            and_missing_successor: 6,
            au_unfulfilled: 0,
            eu_unfulfilled: 0,
            unreachable: 0,
        },
        "E2: per-rule deletions"
    );
    assert_eq!(
        (s.stats.alive_and, s.stats.alive_or),
        (116, 74),
        "E2: alive AND/OR nodes"
    );
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
}

#[test]
fn elapsed_is_phase_total_plus_residual() {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let s = synthesize(&mut problem).unwrap_solved();
    assert_eq!(
        s.stats.elapsed,
        s.stats.phase_total() + s.stats.residual_time,
        "phase timings must partition the wall clock: {:?}",
        s.stats
    );
    // Every phase is a sub-interval of the run.
    assert!(s.stats.phase_total() <= s.stats.elapsed);
}
