//! Integration test for experiment E9: multitolerance (Section 8.2) —
//! different fault classes tolerated in different ways within a single
//! synthesis.

use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::kripke::{Checker, Semantics, StateRole, TransKind};
use ftsyn::{problems::mutex, synthesize, SynthesisProblem, Tolerance, ToleranceAssignment};

/// Mutex under fail-stop faults *plus* an undetectable corruption fault
/// that drops P1 straight into its critical region.
fn mixed_problem() -> (SynthesisProblem, usize) {
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    let n1 = problem.props.id("N1").unwrap();
    let t1 = problem.props.id("T1").unwrap();
    let c1 = problem.props.id("C1").unwrap();
    let d1 = problem.props.id("D1").unwrap();
    let corrupt = FaultAction::new(
        "corrupt-P1-to-C",
        BoolExpr::tru(),
        vec![
            (c1, PropAssign::True),
            (n1, PropAssign::False),
            (t1, PropAssign::False),
            (d1, PropAssign::False),
        ],
    )
    .unwrap();
    problem.faults.push(corrupt);
    let corrupt_idx = problem.faults.len() - 1;
    (problem, corrupt_idx)
}

#[test]
fn uniform_masking_with_corruption_is_impossible() {
    // The corruption can produce [C1 C2], which contradicts the masking
    // label AG ¬(C1 ∧ C2) outright.
    let (mut problem, _) = mixed_problem();
    assert!(!synthesize(&mut problem).is_solved());
}

#[test]
fn multitolerance_masks_fail_stops_and_rides_out_corruption() {
    let (mut problem, corrupt_idx) = mixed_problem();
    let tols: Vec<Tolerance> = (0..problem.faults.len())
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);

    // The nonmasking guarantee: AF AG(global) from every perturbed state
    // reached by the corruption.
    let ag_global = {
        let g = problem.spec.global;
        problem.arena.ag(g)
    };
    let af_ag = problem.arena.af(ag_global);
    let roles = s.model.classify();
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    let mut corruption_targets = 0;
    for st in s.model.state_ids() {
        if roles[st.index()] != StateRole::Perturbed {
            continue;
        }
        let via_corruption = s
            .model
            .pred(st)
            .iter()
            .any(|e| e.kind == TransKind::Fault(corrupt_idx));
        if via_corruption {
            corruption_targets += 1;
            assert!(
                ck.holds(&problem.arena, af_ag, st),
                "corrupted state {} must converge",
                s.model.state(st).display(&problem.props)
            );
        }
    }
    assert!(corruption_targets > 0, "corruption must hit some state");

    // The masking guarantee still holds for fail-stop-reached states.
    for st in s.model.state_ids() {
        if roles[st.index()] != StateRole::Perturbed {
            continue;
        }
        let via_fail_stop = s.model.pred(st).iter().any(|e| {
            matches!(e.kind, TransKind::Fault(a)
                if problem.faults[a].name().starts_with("fail-stop"))
        });
        if via_fail_stop {
            assert!(
                ck.holds(&problem.arena, ag_global, st),
                "fail-stop state {} must be masked",
                s.model.state(st).display(&problem.props)
            );
        }
    }
}

/// Three processes with per-action tolerances: P1's fail-stop/repair
/// actions are only required to be nonmasking, P2's and P3's stay
/// masking. The per-action labels must survive semantic minimization —
/// on the *final* (minimized) model, every perturbed state still honors
/// the tolerance of each fault action that reaches it.
#[test]
fn three_process_multitolerance_labels_survive_minimization() {
    let mut problem = mutex::with_fail_stop_multitolerance(3, |f| {
        if f.name().contains("P1") {
            Tolerance::Nonmasking
        } else {
            Tolerance::Masking
        }
    });
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);

    let ag_global = {
        let g = problem.spec.global;
        problem.arena.ag(g)
    };
    let af_ag = problem.arena.af(ag_global);
    let roles = s.model.classify();
    let mut ck = Checker::new(&s.model, Semantics::FaultFree);
    let (mut via_p1, mut via_rest) = (0, 0);
    for st in s.model.state_ids() {
        if roles[st.index()] != StateRole::Perturbed {
            continue;
        }
        for e in s.model.pred(st) {
            let TransKind::Fault(a) = e.kind else { continue };
            if problem.faults[a].name().contains("P1") {
                via_p1 += 1;
                assert!(
                    ck.holds(&problem.arena, af_ag, st),
                    "state {} reached by nonmasking {} must converge",
                    s.model.state(st).display(&problem.props),
                    problem.faults[a].name()
                );
            } else {
                via_rest += 1;
                assert!(
                    ck.holds(&problem.arena, ag_global, st),
                    "state {} reached by masking {} must be masked",
                    s.model.state(st).display(&problem.props),
                    problem.faults[a].name()
                );
            }
        }
    }
    assert!(via_p1 > 0, "some perturbed state is reached by a P1 fault");
    assert!(via_rest > 0, "some perturbed state is reached by a P2/P3 fault");
}

#[test]
fn per_fault_assignment_round_trips() {
    let (mut problem, corrupt_idx) = mixed_problem();
    let n = problem.faults.len();
    let tols: Vec<Tolerance> = (0..n)
        .map(|i| {
            if i == corrupt_idx {
                Tolerance::Nonmasking
            } else {
                Tolerance::Masking
            }
        })
        .collect();
    problem.tolerance = ToleranceAssignment::PerFault(tols.clone());
    for (i, &t) in tols.iter().enumerate() {
        assert_eq!(problem.tolerance.of(i), t);
    }
    assert_eq!(
        problem.tolerance.distinct(),
        vec![Tolerance::Masking, Tolerance::Nonmasking]
    );
}
