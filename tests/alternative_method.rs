//! Integration tests for the alternative synthesis method of Section
//! 8.3: correctness over *fault-prone* paths (`⊨` rather than `⊨ₙ`).
//!
//! The paper's analysis: "this alternative method would accommodate
//! stronger correctness statements, [but] it may be inapplicable in many
//! situations where our current method would work. For example, repeated
//! occurrence of faults could violate some correctness property, causing
//! the problem to have no model in this setting." All predictions are
//! checked mechanically below — including the positive case the
//! trade-off leaves open: *bounded* faults, under which liveness
//! survives every fault-prone path.

use ftsyn::ctl::{FormulaArena, FormulaId, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::kripke::{Checker, Semantics, StateRole};
use ftsyn::{problems::mutex, synthesize, SynthesisProblem, Tolerance};

#[test]
fn masking_mutex_is_impossible_under_fault_prone_correctness() {
    // Repeated fail-stops can postpone C2 forever: along a fault-prone
    // path where P2 keeps failing (or stays down), AG(T2 ⇒ AF C2) fails,
    // so the problem has no model in the Section 8.3 setting even though
    // the main method solves it.
    let mut problem =
        mutex::with_fail_stop(2, Tolerance::Masking).with_fault_prone_correctness();
    assert!(
        !synthesize(&mut problem).is_solved(),
        "liveness cannot survive unboundedly repeated fail-stops"
    );
}

#[test]
fn main_method_still_solves_what_the_alternative_cannot() {
    // The same masking problem is solvable by the main method — the
    // trade-off the paper describes (weaker statement, wider scope).
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    assert!(synthesize(&mut problem).is_solved());
}

/// A single-process task `idle → try → done → idle` with the liveness
/// requirement `AG(try ⇒ AF done)`, subject to a *reset* fault that
/// throws the process back to `idle` from `try`. When `bounded`, the
/// fault may occur at most once (a unary occurrence counter that the
/// program cannot modify).
fn reset_task(bounded: bool) -> SynthesisProblem {
    let mut props = PropTable::new();
    let idle = props.add("idle", Owner::Process(0)).unwrap();
    let try_ = props.add("try", Owner::Process(0)).unwrap();
    let done = props.add("done", Owner::Process(0)).unwrap();
    let cnt = bounded.then(|| props.add_aux("cnt0", Owner::Process(0)).unwrap());
    let mut arena = FormulaArena::new(1);
    let (fi, ft, fd) = (arena.prop(idle), arena.prop(try_), arena.prop(done));
    let mut globals: Vec<FormulaId> = Vec::new();
    // Exactly one mode.
    let td = arena.or(ft, fd);
    let any = arena.or(fi, td);
    globals.push(any);
    for (a, b1, b2) in [(fi, ft, fd), (ft, fi, fd), (fd, fi, ft)] {
        let or = arena.or(b1, b2);
        let nor = arena.not(or);
        let cl = arena.implies(a, nor);
        globals.push(cl);
    }
    // Movement and liveness.
    let axt = arena.ax(0, ft);
    let cl = arena.implies(fi, axt);
    globals.push(cl);
    let axi = arena.ax(0, fi);
    let cl = arena.implies(fd, axi);
    globals.push(cl);
    let afd = arena.af(fd);
    let cl = arena.implies(ft, afd);
    globals.push(cl);
    let t = arena.tru();
    let ext = arena.ex_all(t);
    globals.push(ext);
    let global = arena.and_all(globals);
    let init = if let Some(c) = cnt {
        let nc = arena.neg_prop(c);
        arena.and(fi, nc)
    } else {
        fi
    };
    // Coupling: the occurrence counter is not program-writable in
    // either direction (only the fault action sets it). AXᵢ ranges over
    // program transitions only, so the fault itself is unconstrained.
    let coupling = if let Some(c) = cnt {
        let fc = arena.prop(c);
        let nfc = arena.neg_prop(c);
        let axc = arena.ax(0, fc);
        let up = arena.implies(fc, axc);
        let axnc = arena.ax(0, nfc);
        let down = arena.implies(nfc, axnc);
        arena.and(up, down)
    } else {
        arena.tru()
    };
    let spec = Spec::with_coupling(init, global, coupling);
    let guard = match cnt {
        Some(c) => BoolExpr::And(vec![BoolExpr::Prop(try_), BoolExpr::not_prop(c)]),
        None => BoolExpr::Prop(try_),
    };
    let mut assigns = vec![
        (try_, PropAssign::False),
        (idle, PropAssign::True),
        (done, PropAssign::False),
    ];
    if let Some(c) = cnt {
        assigns.push((c, PropAssign::True));
    }
    let fault = FaultAction::new("reset", guard, assigns).unwrap();
    SynthesisProblem::new(arena, props, spec, vec![fault], Tolerance::Masking)
}

#[test]
fn bounded_faults_allow_fault_prone_liveness() {
    // With at most one reset, `AF done` is fulfilled along *every* path,
    // resets included — the alternative method succeeds and the result
    // holds under the plain |=.
    let mut problem = reset_task(true).with_fault_prone_correctness();
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    let done = problem.arena.prop(problem.props.id("done").unwrap());
    let try_ = problem.arena.prop(problem.props.id("try").unwrap());
    let afd = problem.arena.af(done);
    let imp = problem.arena.implies(try_, afd);
    let ag = problem.arena.ag(imp);
    let mut ck = Checker::new(&s.model, Semantics::IncludeFaults);
    assert!(
        ck.holds(&problem.arena, ag, s.model.init_states()[0]),
        "liveness must hold over fault-prone paths"
    );
    let roles = s.model.classify();
    assert!(roles.contains(&StateRole::Perturbed));
}

#[test]
fn unbounded_resets_are_impossible_under_fault_prone_correctness() {
    let mut problem = reset_task(false).with_fault_prone_correctness();
    assert!(
        !synthesize(&mut problem).is_solved(),
        "an unboundedly repeatable reset defeats AF done on fault-prone paths"
    );
}

#[test]
fn unbounded_resets_are_fine_under_the_main_method() {
    // The main method tolerates the unbounded reset (the reset lands on
    // a normal valuation, so masking is immediate).
    let mut problem = reset_task(false);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
}

#[test]
fn safety_only_specs_work_in_both_modes() {
    // A pure-safety mutex (starvation-freedom dropped) is synthesizable
    // under fault-prone correctness too: invariances survive arbitrary
    // fault interleavings when every fault lands on a safe valuation.
    let mut problem = mutex::with_fail_stop(2, Tolerance::Masking);
    // Drop the AF clauses from the global specification.
    let safety = problem.spec.global_safety(&mut problem.arena);
    problem.spec.global = safety;
    let mut problem = problem.with_fault_prone_correctness();
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    // Mutual exclusion along every fault-prone path.
    let c1 = problem.arena.prop(problem.props.id("C1").unwrap());
    let c2 = problem.arena.prop(problem.props.id("C2").unwrap());
    let both = problem.arena.and(c1, c2);
    let nboth = problem.arena.not(both);
    let ag = problem.arena.ag(nboth);
    let mut ck = Checker::new(&s.model, Semantics::IncludeFaults);
    assert!(ck.holds(&problem.arena, ag, s.model.init_states()[0]));
}
