//! Integration tests for fail-safe tolerance (Definition 2.1, third
//! case): after a fault, only the *safety* part of the global
//! specification is guaranteed.

use ftsyn::ctl::{FormulaArena, Owner, PropTable, Spec};
use ftsyn::guarded::{BoolExpr, FaultAction, PropAssign};
use ftsyn::kripke::{Checker, Semantics, StateRole};
use ftsyn::{synthesize, SynthesisProblem, Tolerance};

/// A two-process producer/consumer-ish toy: each process alternates
/// `idleᵢ`/`busyᵢ` with the liveness requirement `AG(busyᵢ ⇒ AF idleᵢ)`
/// and the safety requirement that the two are never busy together.
/// The fault wedges P1 (an auxiliary `stuck1` that is permanent and
/// forces P1 to stay busy), killing P1's liveness but not safety.
fn wedge_problem(tol: Tolerance) -> SynthesisProblem {
    let mut props = PropTable::new();
    let i1 = props.add("idle1", Owner::Process(0)).unwrap();
    let b1 = props.add("busy1", Owner::Process(0)).unwrap();
    let i2 = props.add("idle2", Owner::Process(1)).unwrap();
    let b2 = props.add("busy2", Owner::Process(1)).unwrap();
    let stuck = props.add_aux("stuck1", Owner::Process(0)).unwrap();
    let mut arena = FormulaArena::new(2);
    let (fi1, fb1, fi2, fb2, fs) = (
        arena.prop(i1),
        arena.prop(b1),
        arena.prop(i2),
        arena.prop(b2),
        arena.prop(stuck),
    );
    let mut globals = Vec::new();
    // Exactly one per process.
    for (a, b) in [(fi1, fb1), (fi2, fb2)] {
        let nb = arena.not(b);
        let iff = arena.iff(a, nb);
        globals.push(iff);
    }
    // Interleaving.
    for (owner, other, f) in [(0, 1, fi1), (0, 1, fb1), (1, 0, fi2), (1, 0, fb2)] {
        let _ = owner;
        let ax = arena.ax(other, f);
        let cl = arena.implies(f, ax);
        globals.push(cl);
    }
    // Safety: never both busy.
    let bb = arena.and(fb1, fb2);
    let nbb = arena.not(bb);
    globals.push(nbb);
    // Liveness both ways: idle leads to busy and busy leads back to
    // idle (this is what forces the fault's enabling condition to occur
    // in the absence of faults, and what the wedge breaks).
    for (b, idle) in [(fb1, fi1), (fb2, fi2)] {
        let afb = arena.af(b);
        let cl = arena.implies(idle, afb);
        globals.push(cl);
        let afi = arena.af(idle);
        let cl = arena.implies(b, afi);
        globals.push(cl);
    }
    // Progress.
    let t = arena.tru();
    let ext = arena.ex_all(t);
    globals.push(ext);
    let global = arena.and_all(globals);
    let init = {
        let ii = arena.and(fi1, fi2);
        let ns = arena.neg_prop(stuck);
        arena.and(ii, ns)
    };
    // Coupling: stuck is permanent and forces P1 busy.
    let ag_stuck = arena.ag(fs);
    let c1 = arena.implies(fs, ag_stuck);
    let c2 = arena.implies(fs, fb1);
    // Other process cannot change stuck.
    let ax_stuck = arena.ax(1, fs);
    let c3 = arena.implies(fs, ax_stuck);
    let c12 = arena.and(c1, c2);
    let coupling = arena.and(c12, c3);
    let spec = Spec::with_coupling(init, global, coupling);
    let fault = FaultAction::new(
        "wedge-P1",
        BoolExpr::And(vec![BoolExpr::Prop(b1), BoolExpr::not_prop(stuck)]),
        vec![(stuck, PropAssign::True)],
    )
    .unwrap();
    SynthesisProblem::new(arena, props, spec, vec![fault], tol)
}

#[test]
fn masking_and_nonmasking_are_impossible_for_the_wedge() {
    for tol in [Tolerance::Masking, Tolerance::Nonmasking] {
        let mut problem = wedge_problem(tol);
        assert!(
            !synthesize(&mut problem).is_solved(),
            "{tol:?} cannot restore P1's liveness"
        );
    }
}

#[test]
fn failsafe_solves_the_wedge_and_keeps_safety() {
    let mut problem = wedge_problem(Tolerance::FailSafe);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
    assert!(s.verification.perturbed_count > 0);

    // Safety (never both busy) holds at every reachable state, even
    // across fault transitions.
    let b1 = problem.arena.prop(problem.props.id("busy1").unwrap());
    let b2 = problem.arena.prop(problem.props.id("busy2").unwrap());
    let bb = problem.arena.and(b1, b2);
    let nbb = problem.arena.not(bb);
    let ag = problem.arena.ag(nbb);
    let mut ck = Checker::new(&s.model, Semantics::IncludeFaults);
    assert!(ck.holds(&problem.arena, ag, s.model.init_states()[0]));

    // And the liveness part is indeed *not* restored at the wedged
    // states (this is what distinguishes fail-safe from masking): P1
    // stays busy forever there.
    let i1 = problem.arena.prop(problem.props.id("idle1").unwrap());
    let af_idle = problem.arena.af(i1);
    let roles = s.model.classify();
    let mut ckn = Checker::new(&s.model, Semantics::FaultFree);
    let mut saw_wedged = false;
    for st in s.model.state_ids() {
        if roles[st.index()] == StateRole::Perturbed {
            saw_wedged = true;
            assert!(
                !ckn.holds(&problem.arena, af_idle, st),
                "the wedge is permanent: P1 cannot become idle again"
            );
        }
    }
    assert!(saw_wedged);
}

#[test]
fn failsafe_of_mutex_under_fail_stop_also_works() {
    // Fail-safe is weaker than masking, so the paper's masking-solvable
    // problem is also fail-safe-solvable.
    let mut problem = ftsyn::problems::mutex::with_fail_stop(2, Tolerance::FailSafe);
    let s = synthesize(&mut problem).unwrap_solved();
    assert!(s.verification.ok(), "{:?}", s.verification.failures);
}
