//! Equivalence regression between the two deletion engines: the
//! worklist implementation ([`apply_deletion_rules_mode`]) and the
//! sweep-based reference ([`apply_deletion_rules_naive_mode`], compiled
//! via the `slow-reference` feature) must produce identical alive-node
//! sets and identical per-rule [`DeletionStats`](ftsyn::tableau::DeletionStats)
//! on every problem, for both certificate modes.

use ftsyn::ctl::Closure;
use ftsyn::problems::{barrier, mutex, readers_writers};
use ftsyn::tableau::{
    apply_deletion_rules_mode, apply_deletion_rules_naive_mode, build, CertMode, FaultSpec,
    Tableau,
};
use ftsyn::{SynthesisProblem, Tolerance};

/// Builds the closure and tableau `T₀` of a problem, exactly as the
/// synthesis pipeline does before the deletion phase.
fn tableau_of(problem: &mut SynthesisProblem) -> (Closure, Tableau) {
    let roots = problem.closure_roots();
    let spec = roots[0];
    let closure = Closure::build(&mut problem.arena, &problem.props, &roots);
    let tolerance_labels = problem.tolerance_label_sets(&closure);
    let fault_spec = FaultSpec {
        actions: problem.faults.clone(),
        tolerance_labels,
    };
    let mut root = closure.empty_label();
    root.insert(closure.index_of(spec).expect("spec is a closure root"));
    let t = build(&closure, &problem.props, root, &fault_spec);
    (closure, t)
}

fn assert_engines_agree(name: &str, make: impl Fn() -> SynthesisProblem) {
    for mode in [CertMode::FaultFree, CertMode::FaultProne] {
        let mut problem = make();
        let (closure, t0) = tableau_of(&mut problem);
        let mut t_worklist = t0.clone();
        let mut t_reference = t0;
        let fast = apply_deletion_rules_mode(&mut t_worklist, &closure, mode);
        let slow = apply_deletion_rules_naive_mode(&mut t_reference, &closure, mode);
        assert_eq!(fast, slow, "{name} ({mode:?}): per-rule stats differ");
        for id in t_worklist.node_ids() {
            assert_eq!(
                t_worklist.alive(id),
                t_reference.alive(id),
                "{name} ({mode:?}): engines disagree on node {id:?}"
            );
        }
    }
}

#[test]
fn mutex_fail_stop_masking() {
    assert_engines_agree("mutex+fail-stop/masking", || {
        mutex::with_fail_stop(2, Tolerance::Masking)
    });
}

#[test]
fn mutex_fail_stop_nonmasking() {
    assert_engines_agree("mutex+fail-stop/nonmasking", || {
        mutex::with_fail_stop(2, Tolerance::Nonmasking)
    });
}

#[test]
fn mutex_fault_free() {
    assert_engines_agree("mutex/fault-free", || mutex::fault_free(2));
}

#[test]
fn barrier_general_state_faults() {
    assert_engines_agree("barrier+state-faults", || {
        barrier::with_general_state_faults(2)
    });
}

#[test]
fn barrier_impossible_instance() {
    // The root dies here, exercising full-graph cascades in both
    // engines.
    assert_engines_agree("barrier+fail-stop/impossible", || {
        barrier::with_fail_stop_impossible(2)
    });
}

#[test]
fn readers_writers_writer_fail_stop() {
    assert_engines_agree("readers-writers+fail-stop", || {
        readers_writers::with_writer_fail_stop(2, Tolerance::FailSafe)
    });
}
