//! No-op `serde` facade — offline stand-in (see `third_party/README.md`).
//!
//! Re-exports the no-op derive macros under the names the
//! `#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]`
//! attributes in the workspace expect.

pub use serde_derive::{Deserialize, Serialize};
