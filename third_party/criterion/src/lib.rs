//! Minimal criterion-compatible benchmark harness — offline stand-in
//! (see `third_party/README.md`).
//!
//! Implements the slice of the criterion 0.5 API the `ftsyn-bench`
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! closure is actually run and timed (one warmup iteration, then
//! `sample_size` samples) and the median / min / max are printed, so
//! `cargo bench` gives useful, if unrigorous, numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one untimed warmup call, then `sample_size`
    /// timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let _warmup = routine();
        for _ in 0..self.samples {
            let t = Instant::now();
            let out = routine();
            self.durations.push(t.elapsed());
            drop(out);
        }
    }
}

fn report(name: &str, durations: &mut Vec<Duration>) {
    if durations.is_empty() {
        println!("{name}: no samples");
        return;
    }
    durations.sort();
    let median = durations[durations.len() / 2];
    let min = durations[0];
    let max = durations[durations.len() - 1];
    println!(
        "{name}: median {median:.2?} (min {min:.2?}, max {max:.2?}, n={})",
        durations.len()
    );
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(name, &mut b.durations);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size,
        }
    }
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id carrying only a parameter rendering.
    pub fn from_parameter<P: Display>(param: P) -> BenchmarkId {
        BenchmarkId {
            param: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, param: P) -> BenchmarkId {
        BenchmarkId {
            param: format!("{}/{}", function.into(), param),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.param);
        report(&label, &mut b.durations);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::black_box`; benches here use
/// `std::hint::black_box`, but the symbol is exported for
/// compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function (both criterion syntaxes).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
