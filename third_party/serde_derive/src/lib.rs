//! No-op `Serialize` / `Deserialize` derive macros — offline stand-in
//! for `serde_derive` (see `third_party/README.md`).
//!
//! The workspace only *derives* the serde traits behind a non-default
//! feature; no code calls the serde runtime API, so expanding the
//! derives to nothing is sufficient for compilation.

use proc_macro::TokenStream;

/// Expands to nothing: accepts any item, generates no impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: accepts any item, generates no impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
